"""``ExecutionOptions`` — the one options surface for session and service.

Historically every knob travelled as its own keyword argument:
``PdwSession(compiled=..., parallel=..., trace=...)`` at construction,
``hints=`` on every verb, ``profile=`` on the runner.  The options object
replaces that scatter: one frozen dataclass, resolved once per call, that
both :class:`repro.session.PdwSession` and
:class:`repro.service.PdwService` accept::

    from repro import ExecutionOptions, PdwSession

    opts = ExecutionOptions(compiled=False, hints={"orders": "replicate"})
    session = PdwSession(options=opts)
    result = session.run("SELECT COUNT(*) AS n FROM lineitem")

The old keyword spellings keep working for one release behind a
:class:`DeprecationWarning` shim (:func:`warn_deprecated_option`);
internal callers have been migrated and CI fails if any repo-internal
code path raises the warning.

``parallel=None`` means "resolve from the ``REPRO_PARALLEL_RUNTIME``
environment variable, else the caller's default" — :meth:`resolved`
folds the environment in exactly once, so an options object that has
been resolved never re-reads the environment.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Tuple, Union

from repro.appliance.scheduler import resolve_parallel
from repro.common.errors import ReproError
from repro.common.executors import effective_executor, resolve_executor

#: Admission priority classes, best first.  Lower rank wins the queue.
PRIORITY_CLASSES: Mapping[str, int] = {
    "interactive": 0,
    "normal": 1,
    "batch": 2,
}

HintsInput = Union[Mapping[str, str], Tuple[Tuple[str, str], ...], None]


def normalize_hints(hints: HintsInput) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Hints as a canonical, hashable tuple of (table, strategy) pairs.

    Accepts a mapping or an already-normalized tuple; table names are
    lowercased and pairs sorted so equal hint sets compare (and hash)
    equal — the plan cache keys on this form.
    """
    if not hints:
        return None
    if isinstance(hints, Mapping):
        items = hints.items()
    else:
        items = hints
    return tuple(sorted((str(name).lower(), str(strategy))
                        for name, strategy in items))


@dataclass(frozen=True)
class ExecutionOptions:
    """Everything that shapes one compile-and-execute call.

    * ``executor`` — which execution backend runs step SQL on the
      nodes: ``"reference"`` (tree-walking interpreter), ``"compiled"``
      (closure backend, the default), ``"vectorized"`` (columnar
      batch kernels, :mod:`repro.vector`) or ``"numpy"`` (typed
      ndarray kernels that release the GIL; degrades to
      ``"vectorized"`` with a warning when numpy is absent).  ``None``
      derives from the legacy ``compiled`` flag;
    * ``compiled`` — legacy boolean spelling of the first two backends;
      kept in sync with ``executor`` (an explicit ``executor`` wins,
      and ``compiled`` is re-derived as ``executor != "reference"``);
    * ``parallel`` — the parallel appliance runtime; ``None`` defers to
      the ``REPRO_PARALLEL_RUNTIME`` environment variable and then the
      front door's default (the session and service default to parallel,
      the low-level runners to serial);
    * ``trace`` — whether the session allocates a live tracer/metrics
      registry (resolved once at construction; the no-op tracer costs
      nothing);
    * ``profile`` — collect per-node/per-operator actuals and transfer
      matrices during execution;
    * ``hints`` — §3.1 distributed-execution hints, normalized to a
      sorted tuple of (table, strategy) pairs (mappings accepted);
    * ``use_plan_cache`` — let :class:`repro.service.PdwService` serve
      this query from the parameterized plan cache;
    * ``priority`` / ``tenant`` / ``timeout_seconds`` — admission
      class, accounting identity and queue-wait bound for service calls;
    * ``slow_seconds`` — the flight recorder's slow-query threshold
      (``None`` keeps :data:`repro.obs.requests.DEFAULT_SLOW_SECONDS`);
      consumed when the session/service builds its default
      :class:`~repro.obs.requests.RequestRegistry`.
    """

    compiled: bool = True
    executor: Optional[str] = None
    parallel: Optional[bool] = None
    trace: bool = True
    profile: bool = False
    hints: Optional[Tuple[Tuple[str, str], ...]] = None
    use_plan_cache: bool = True
    priority: str = "normal"
    tenant: str = "default"
    timeout_seconds: Optional[float] = None
    slow_seconds: Optional[float] = None
    #: Set by :meth:`resolved`; a resolved object never re-reads the
    #: environment (``parallel`` is a concrete bool).
    env_resolved: bool = field(default=False, compare=False)

    def __post_init__(self):
        # Normalize the backend pair: an explicit executor is canonical
        # and re-derives the legacy boolean; executor=None derives from
        # compiled so old callers see unchanged behaviour.
        canonical = resolve_executor(self.executor, self.compiled)
        object.__setattr__(self, "executor", canonical)
        object.__setattr__(self, "compiled", canonical != "reference")
        if self.hints is not None and not isinstance(self.hints, tuple):
            object.__setattr__(self, "hints", normalize_hints(self.hints))
        if self.priority not in PRIORITY_CLASSES:
            raise ReproError(
                f"unknown priority class {self.priority!r} "
                f"(use one of {tuple(PRIORITY_CLASSES)})")
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ReproError("timeout_seconds must be non-negative")
        if self.slow_seconds is not None and self.slow_seconds < 0:
            raise ReproError("slow_seconds must be non-negative")

    # -- derived views ---------------------------------------------------------

    @property
    def hints_dict(self) -> Optional[dict]:
        """Hints in the mapping form the engine consumes."""
        return dict(self.hints) if self.hints else None

    @property
    def priority_rank(self) -> int:
        return PRIORITY_CLASSES[self.priority]

    # -- resolution ------------------------------------------------------------

    def resolved(self, default_parallel: bool = True) -> "ExecutionOptions":
        """Fold the environment into a concrete options object:
        ``parallel`` from ``REPRO_PARALLEL_RUNTIME`` (explicit value >
        env var > ``default_parallel``), and ``executor`` downgraded to
        the backend that will actually run (``"numpy"`` becomes
        ``"vectorized"``, with one warning, when numpy is absent).
        Idempotent: an already-resolved object is returned unchanged."""
        if self.env_resolved:
            return self
        return replace(
            self,
            executor=effective_executor(self.executor),
            parallel=resolve_parallel(self.parallel,
                                      default=default_parallel),
            env_resolved=True,
        )

    def with_hints(self, hints: HintsInput) -> "ExecutionOptions":
        """A copy carrying ``hints`` (normalized); ``None`` clears them."""
        return replace(self, hints=normalize_hints(hints))

    def override(self, **changes) -> "ExecutionOptions":
        """A copy with the given fields replaced (``hints`` normalized).

        ``compiled=`` without an accompanying ``executor=`` is treated
        as a backend change (the stored executor would otherwise win
        during re-normalization and silently ignore it)."""
        if "hints" in changes:
            changes["hints"] = normalize_hints(changes["hints"])
        if "compiled" in changes and "executor" not in changes:
            changes["executor"] = (
                "compiled" if changes["compiled"] else "reference")
        return replace(self, **changes)


def warn_deprecated_option(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the one-release deprecation warning for a legacy kwarg."""
    warnings.warn(
        f"{old} is deprecated; pass "
        f"ExecutionOptions({new}) via options= instead",
        DeprecationWarning, stacklevel=stacklevel)
