"""``PdwSession`` — the unified front door to the reproduction.

The session owns the four pieces every caller previously wired by hand
(appliance, shell database, compilation engine, tracer) and exposes the
three verbs that cover the pipeline end to end:

* :meth:`PdwSession.compile` — SQL text → :class:`CompiledQuery`;
* :meth:`PdwSession.run` — compile + execute on the appliance →
  :class:`QueryResult`;
* :meth:`PdwSession.explain` — human-readable plan report;
  ``explain(analyze=True)`` *executes* the plan and renders a per-DSQL-step
  table of estimated vs. actual rows / DMS bytes / simulated seconds — the
  reproduction's EXPLAIN ANALYZE;
* :meth:`PdwSession.profile` — compile + execute with per-node /
  per-operator profiling: skew statistics over the DMS transfer matrices
  and Q-errors joining optimizer estimates against runtime actuals
  (:meth:`profile_report` renders the tables; ``repro profile`` on the
  CLI);
* :meth:`PdwSession.why` — compile with the optimizer search-space
  recorder on and render "why this plan": the winning distributed plan
  against the §2.5 parallelized-serial baseline (per-subtree DMS cost
  deltas) plus the enumeration/prune/enforce trace tables
  (``repro why`` on the CLI; ``explain(optimizer=True)`` appends the
  same section).  :meth:`PdwSession.optimizer_trace` and
  :meth:`PdwSession.plan_choice` return the structured forms.

A session created with just SQL text binds that text as its default query,
so the one-liner from the README works::

    print(PdwSession("SELECT COUNT(*) AS n FROM lineitem")
          .explain(analyze=True))

Every knob travels in one frozen
:class:`repro.service.ExecutionOptions` object accepted at construction
(``PdwSession(options=...)``) and on every verb (``run(options=...)``);
the old scattered kwargs (``compiled=``, ``parallel=``, ``trace=``,
per-call ``hints=``) still work behind a :class:`DeprecationWarning`
shim for one release.

Execution uses the compiled backend by default — scalar expressions are
compiled to Python closures and each DSQL step's SQL is parsed + bound
once, then re-run on every compute node.  The ``executor`` option picks
the backend by name: ``ExecutionOptions(executor="vectorized")`` (CLI:
``--executor vectorized``) runs steps batch-at-a-time over columnar
fragments (:mod:`repro.vector`),
``ExecutionOptions(executor="numpy")`` runs the same plans over typed
ndarrays whose kernels release the GIL (degrading to ``"vectorized"``
with one warning when numpy is absent), and
``ExecutionOptions(executor="reference")`` (CLI: ``--no-compiled-exec``
or ``--executor reference``) forces the tree-walking reference
interpreter.  The legacy ``compiled=`` boolean maps onto the
reference/compiled pair.

The session also defaults to the **parallel appliance runtime**: DSQL
steps are scheduled as a dependency DAG (independent join subtrees
overlap) and each step's per-node fragments run on a thread pool with
fast-path shuffle routing, merged deterministically so results and stats
are identical to the serial walk.
``PdwSession(options=ExecutionOptions(parallel=False))`` (CLI:
``--serial-runtime``) selects the §2.4 serial reference backend; the
``REPRO_PARALLEL_RUNTIME`` environment variable overrides the default
for whole test-suite sweeps.

Telemetry is on by default (the session is the observability surface; the
low-level classes default to the no-op tracer): every compile and run
appends spans to :attr:`PdwSession.tracer`, and :meth:`trace_report` /
:meth:`stats_report` render the span tree and the counter totals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.appliance.runner import DsqlRunner, ExecutionTiming, QueryResult
from repro.appliance.storage import Appliance
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import ReproError
from repro.obs.export import optimizer_trace_to_metrics, profile_to_metrics
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.opt_trace import OptimizerTrace
from repro.obs.profiler import QueryProfile, build_query_profile
from repro.obs.report import (
    render_optimizer_trace_report,
    render_profile_report,
    render_requests_report,
)
from repro.obs.query_store import NULL_QUERY_STORE, QueryStore
from repro.obs.requests import (
    DEFAULT_SLOW_SECONDS,
    NULL_REQUESTS,
    RequestRegistry,
)
from repro.obs.system_views import (
    mentions_system_views,
    refresh_system_views,
    register_system_views,
)
from repro.optimizer.search import OptimizerConfig
from repro.pdw.dsql import StepKind
from repro.pdw.engine import CompiledQuery, PdwEngine
from repro.pdw.enumerator import PdwConfig
from repro.pdw.why import PlanChoice, explain_plan_choice, render_plan_choice
from repro.service.options import ExecutionOptions, warn_deprecated_option
from repro.telemetry import NULL_TRACER, Tracer
from repro.workloads.tpch_datagen import build_tpch_appliance

#: Sentinel distinguishing "kwarg not passed" from an explicit value, so
#: the deprecated spellings warn only when actually used.
_UNSET = object()


@dataclass
class StepAnalysis:
    """One row of the EXPLAIN ANALYZE table: estimate vs. measurement."""

    index: int
    kind: str                 # "DMS" or "Return"
    operation: str            # movement description or "Return"
    estimated_rows: float
    actual_rows: int
    estimated_bytes: float
    actual_bytes: int
    estimated_seconds: float  # DMS cost model prediction
    actual_seconds: float     # simulated elapsed (movement + local SQL)


class PdwSession:
    """Owns appliance + shell + engine + tracer; the recommended API."""

    def __init__(self, sql: Optional[str] = None, *,
                 scale: float = 0.002,
                 node_count: int = 8,
                 appliance: Optional[Appliance] = None,
                 shell: Optional[ShellDatabase] = None,
                 options: Optional[ExecutionOptions] = None,
                 serial_config: Optional[OptimizerConfig] = None,
                 pdw_config: Optional[PdwConfig] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 requests: Optional[RequestRegistry] = None,
                 query_store: Optional[QueryStore] = None,
                 trace=_UNSET,
                 compiled=_UNSET,
                 parallel=_UNSET):
        if (appliance is None) != (shell is None):
            raise ReproError(
                "pass both appliance and shell, or neither "
                "(a shell database must describe its appliance)")
        if appliance is None:
            appliance, shell = build_tpch_appliance(scale=scale,
                                                    node_count=node_count)
        self.sql = sql
        self.appliance = appliance
        self.shell = shell
        opts = options if options is not None else ExecutionOptions()
        # Deprecated kwarg spellings fold into the options object.
        if trace is not _UNSET:
            warn_deprecated_option("PdwSession(trace=...)",
                                   f"trace={trace!r}")
            opts = opts.override(trace=trace)
        if compiled is not _UNSET:
            executor = "compiled" if compiled else "reference"
            warn_deprecated_option("PdwSession(compiled=...)",
                                   f"executor={executor!r}")
            opts = opts.override(executor=executor)
        if parallel is not _UNSET:
            warn_deprecated_option("PdwSession(parallel=...)",
                                   f"parallel={parallel!r}")
            opts = opts.override(parallel=parallel)
        # The session front door runs the parallel appliance runtime by
        # default (the low-level DsqlRunner defaults to the serial
        # reference walk, mirroring the NULL_TRACER convention).
        opts = opts.resolved(default_parallel=True)
        self.options = opts
        self.compiled = opts.compiled
        self.executor = opts.executor
        self.parallel = opts.parallel
        if tracer is None:
            tracer = Tracer() if opts.trace else NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            metrics = MetricsRegistry() if opts.trace else NULL_METRICS
        self.metrics = metrics
        # Request-lifecycle registry: live whenever tracing is (it is the
        # observability surface), shareable across sessions/services by
        # passing the same registry object in.
        if requests is None:
            threshold = (opts.slow_seconds if opts.slow_seconds
                         is not None else DEFAULT_SLOW_SECONDS)
            requests = (RequestRegistry(slow_threshold_seconds=threshold)
                        if opts.trace else NULL_REQUESTS)
        self.requests = requests
        # Query store: live whenever tracing is (same rule as the
        # flight recorder); pass NULL_QUERY_STORE to opt out.
        if query_store is None:
            query_store = QueryStore() if opts.trace else NULL_QUERY_STORE
        self.query_store = query_store
        if requests.enabled or query_store.enabled:
            register_system_views(appliance)
        self.engine = PdwEngine(shell, serial_config, pdw_config,
                                tracer=tracer)
        self.runner = DsqlRunner(appliance, tracer=tracer,
                                 executor=opts.executor, metrics=metrics,
                                 parallel=opts.parallel)
        # Per-call options may flip executor/parallel; variant runners
        # are built lazily and reused.
        self._runners: Dict[Tuple[str, bool], DsqlRunner] = {
            (opts.executor, opts.parallel): self.runner,
        }

    # -- options plumbing ------------------------------------------------------

    def _call_options(self, options: Optional[ExecutionOptions],
                      hints=_UNSET) -> ExecutionOptions:
        """The effective options for one verb call: per-call object,
        else the session's; the deprecated ``hints=`` kwarg folds in
        with a warning."""
        opts = (options if options is not None
                else self.options).resolved(default_parallel=True)
        if hints is not _UNSET and hints is not None:
            warn_deprecated_option("hints=", f"hints={hints!r}",
                                   stacklevel=4)
            opts = opts.override(hints=hints)
        return opts

    def _runner_for(self, opts: ExecutionOptions) -> DsqlRunner:
        key = (opts.executor, bool(opts.parallel))
        runner = self._runners.get(key)
        if runner is None:
            runner = DsqlRunner(self.appliance, tracer=self.tracer,
                                executor=opts.executor,
                                metrics=self.metrics,
                                parallel=opts.parallel)
            self._runners[key] = runner
        return runner

    # -- the three verbs -------------------------------------------------------

    def compile(self, sql: Optional[str] = None,
                hints=_UNSET, *,
                options: Optional[ExecutionOptions] = None
                ) -> CompiledQuery:
        """Compile SQL (or the session's bound query) into a DSQL plan."""
        opts = self._call_options(options, hints)
        resolved = self._resolve(sql)
        # EXPLAIN over sys.dm_pdw_* must see the views registered and
        # populated before binding.
        if (self.requests.enabled or self.query_store.enabled) \
                and mentions_system_views(resolved):
            self.refresh_system_views()
        return self.engine.compile(resolved, hints=opts.hints_dict)

    def run(self, sql: Optional[str] = None,
            hints=_UNSET, *,
            options: Optional[ExecutionOptions] = None,
            compiled=_UNSET) -> QueryResult:
        """Compile and execute on the appliance.

        The :class:`QueryResult` carries the client rows and per-step
        stats, plus the compiled-plan handle (``result.plan``) and a
        wall-clock compile/execute breakdown (``result.timing``);
        iterating the result iterates its rows.  The deprecated
        ``compiled=`` kwarg maps onto the ``executor`` option
        (``True`` → ``"compiled"``, ``False`` → ``"reference"``).
        """
        opts = self._call_options(options, hints)
        if compiled is not _UNSET:
            executor = "compiled" if compiled else "reference"
            warn_deprecated_option("run(compiled=...)",
                                   f"executor={executor!r}")
            opts = opts.override(executor=executor)
        resolved = self._resolve(sql)
        request = self.requests.begin(resolved, tenant=opts.tenant,
                                      priority=opts.priority)
        # Refresh after begin so a DMV query observes itself (queued).
        if (self.requests.enabled or self.query_store.enabled) \
                and mentions_system_views(resolved):
            self.refresh_system_views()
        started = time.perf_counter()
        try:
            request.compiling()
            compiled = self.engine.compile(resolved,
                                           hints=opts.hints_dict)
            compile_seconds = time.perf_counter() - started
            execute_started = time.perf_counter()
            result = self._runner_for(opts).run(compiled.dsql_plan,
                                                profile=opts.profile,
                                                request=request)
            execute_seconds = time.perf_counter() - execute_started
        except Exception as exc:
            request.failed(str(exc),
                           total_seconds=time.perf_counter() - started)
            raise
        total_seconds = time.perf_counter() - started
        result.plan = compiled
        result.timing = ExecutionTiming(
            compile_seconds=compile_seconds,
            execute_seconds=execute_seconds,
            total_seconds=total_seconds,
        )
        result.request_id = request.request_id
        request.complete(rows=len(result.rows), cache_hit=False,
                         queue_seconds=0.0,
                         compile_seconds=compile_seconds,
                         execute_seconds=execute_seconds,
                         total_seconds=total_seconds)
        if self.query_store.enabled:
            self.query_store.stamp(
                resolved, compiled.dsql_plan, result,
                schema_version=self.appliance.schema_version,
                cache_hit=False, timing=result.timing)
        return result

    def explain(self, sql: Optional[str] = None,
                analyze: bool = False,
                verbose: bool = False,
                optimizer: bool = False,
                hints=_UNSET, *,
                options: Optional[ExecutionOptions] = None) -> str:
        """Render the compiled plan; ``analyze=True`` also executes it and
        appends the per-step estimated-vs-actual table;
        ``optimizer=True`` recompiles with the search-space recorder on
        and appends the "why this plan" §2.5 baseline diff plus the
        enumeration/prune/enforce trace."""
        opts = self._call_options(options, hints)
        if optimizer:
            compiled, trace, choice = self.plan_choice(sql, options=opts)
        else:
            compiled = self.compile(sql, options=opts)
        text = compiled.explain(verbose=verbose)
        if analyze:
            analyses, result = self.analyze_plan(compiled)
            text = "\n".join([
                text,
                "",
                render_analysis_table(analyses),
                f"-- {len(result.rows)} result rows, "
                f"{result.elapsed_seconds * 1e3:.3f} ms simulated "
                f"({result.dms_seconds * 1e3:.3f} ms data movement)",
            ])
        if optimizer:
            text = "\n".join([
                text,
                "",
                render_plan_choice(choice),
                "",
                render_optimizer_trace_report(trace),
            ])
        return text

    def profile(self, sql: Optional[str] = None,
                hints=_UNSET, *,
                options: Optional[ExecutionOptions] = None
                ) -> QueryProfile:
        """Compile and execute with per-node / per-operator profiling on.

        Returns a :class:`repro.obs.profiler.QueryProfile`: per-step skew
        statistics over the DMS transfer matrices, per-operator actual row
        counts on every node, and Q-errors joining the winning plan's
        cardinality estimates against those actuals.  When the session's
        metrics registry is live the profile is also folded into it, so
        ``session.metrics.render_prometheus()`` includes the run.
        """
        opts = self._call_options(options, hints)
        resolved = self._resolve(sql)
        compiled = self.compile(resolved, options=opts)
        result = self._runner_for(opts).run(compiled.dsql_plan,
                                            profile=True)
        profile = build_query_profile(
            compiled.dsql_plan.steps, result.step_stats,
            node_count=self.appliance.node_count,
            sql=resolved,
            elapsed_seconds=result.elapsed_seconds,
            dms_seconds=result.dms_seconds,
        )
        if self.metrics.enabled:
            profile_to_metrics(profile, self.metrics)
        return profile

    def profile_report(self, sql: Optional[str] = None,
                       hints=_UNSET, *,
                       options: Optional[ExecutionOptions] = None) -> str:
        """:meth:`profile` rendered as per-step and per-operator tables
        with skew and Q-error columns."""
        opts = self._call_options(options, hints)
        return render_profile_report(self.profile(sql, options=opts))

    # -- optimizer search-space tracing ----------------------------------------

    def optimizer_trace(self, sql: Optional[str] = None,
                        hints=_UNSET, *,
                        options: Optional[ExecutionOptions] = None
                        ) -> Tuple[CompiledQuery, OptimizerTrace]:
        """Compile with a live :class:`repro.obs.OptimizerTrace`.

        Tracing never changes the outcome: the winning plan, its cost,
        and every downstream artifact are identical to an untraced
        compilation of the same query.
        """
        opts = self._call_options(options, hints)
        trace = OptimizerTrace()
        compiled = self.engine.compile(self._resolve(sql),
                                       hints=opts.hints_dict,
                                       opt_trace=trace)
        return compiled, trace

    def plan_choice(self, sql: Optional[str] = None,
                    hints=_UNSET, *,
                    options: Optional[ExecutionOptions] = None
                    ) -> Tuple[CompiledQuery, OptimizerTrace, PlanChoice]:
        """Traced compilation plus the §2.5 baseline comparison.

        When the session's metrics registry is live, the trace and the
        comparison are folded into it as ``pdw_optimizer_*`` series, so
        ``session.metrics.render_prometheus()`` includes the run.
        """
        opts = self._call_options(options, hints)
        compiled, trace = self.optimizer_trace(sql, options=opts)
        choice = explain_plan_choice(compiled, self.shell)
        if self.metrics.enabled:
            optimizer_trace_to_metrics(trace, self.metrics,
                                       plan_choice=choice)
        return compiled, trace, choice

    def why(self, sql: Optional[str] = None,
            hints=_UNSET,
            top_k: int = 10, *,
            options: Optional[ExecutionOptions] = None) -> str:
        """"Why did the optimizer pick this plan?" — the rendered §2.5
        baseline diff followed by the search-space trace tables."""
        opts = self._call_options(options, hints)
        _compiled, trace, choice = self.plan_choice(sql, options=opts)
        return "\n".join([
            render_plan_choice(choice),
            "",
            render_optimizer_trace_report(trace, top_k=top_k),
        ])

    # -- EXPLAIN ANALYZE internals --------------------------------------------

    def analyze_plan(self, compiled: CompiledQuery
                     ) -> Tuple[List[StepAnalysis], QueryResult]:
        """Execute a compiled plan and join each DSQL step's estimates
        with its measured execution stats."""
        result = self.runner.run(compiled.dsql_plan)
        analyses: List[StepAnalysis] = []
        for step, stats in zip(compiled.dsql_plan.steps, result.step_stats):
            if step.kind is StepKind.DMS:
                kind = "DMS"
                operation = (step.movement.describe() if step.movement
                             else "Move")
                actual_bytes = stats.total_bytes()
            else:
                kind = "Return"
                operation = "Return"
                actual_bytes = sum(stats.network_bytes.values())
            analyses.append(StepAnalysis(
                index=step.index,
                kind=kind,
                operation=operation,
                estimated_rows=step.estimated_rows,
                actual_rows=stats.rows_moved,
                estimated_bytes=step.estimated_bytes,
                actual_bytes=actual_bytes,
                estimated_seconds=step.estimated_cost,
                actual_seconds=stats.elapsed_seconds,
            ))
        return analyses, result

    # -- request lifecycle / system views --------------------------------------

    def refresh_system_views(self) -> None:
        """Materialize the ``sys.dm_pdw_*`` and ``sys.query_store_*``
        snapshot tables from the live request registry and query store.
        Called automatically whenever a query mentions a system view;
        callable directly to pre-warm them."""
        refresh_system_views(self.appliance, self.requests,
                             query_store=self.query_store)

    def requests_report(self, slow_only: bool = False) -> str:
        """The flight recorder rendered as terminal tables (the
        ``repro requests`` output)."""
        return render_requests_report(self.requests, slow_only=slow_only)

    # -- telemetry reports -----------------------------------------------------

    def trace_report(self) -> str:
        """The nested span tree accumulated so far."""
        return self.tracer.render_spans()

    def stats_report(self) -> str:
        """Compile-phase timing breakdown plus all counter totals."""
        lines = ["Phase timings:"]
        compile_span = self.tracer.find("compile")
        if compile_span is None:
            lines.append("  (no compilation traced)")
        else:
            for span in compile_span.walk():
                lines.append(
                    f"  {span.name:<28} "
                    f"{span.duration_seconds * 1e3:9.3f} ms")
        lines += ["", "Counters:"]
        counters = self.tracer.render_counters()
        lines += ["  " + line for line in counters.splitlines()]
        return "\n".join(lines)

    # -- plumbing --------------------------------------------------------------

    def _resolve(self, sql: Optional[str]) -> str:
        resolved = sql if sql is not None else self.sql
        if resolved is None:
            raise ReproError(
                "no SQL given: pass sql to the method or bind a query "
                "when creating the PdwSession")
        return resolved


def render_analysis_table(analyses: List[StepAnalysis]) -> str:
    """The EXPLAIN ANALYZE table: one aligned row per DSQL step plus a
    totals row.

    "est s (DMS)" is the DMS cost model's *data-movement* prediction only
    — local SQL extraction time is outside the model (§5) — whereas
    "act s" is the full simulated step time, so the two columns are not
    directly comparable on movement-light steps.
    """
    headers = ["step", "operation", "est rows", "act rows",
               "est bytes", "act bytes", "est s (DMS)", "act s"]
    rows = [[
        str(a.index),
        a.operation,
        f"{a.estimated_rows:.0f}",
        str(a.actual_rows),
        f"{a.estimated_bytes:.0f}",
        str(a.actual_bytes),
        f"{a.estimated_seconds:.6f}",
        f"{a.actual_seconds:.6f}",
    ] for a in analyses]
    if analyses:
        rows.append([
            "",
            "total",
            f"{sum(a.estimated_rows for a in analyses):.0f}",
            str(sum(a.actual_rows for a in analyses)),
            f"{sum(a.estimated_bytes for a in analyses):.0f}",
            str(sum(a.actual_bytes for a in analyses)),
            f"{sum(a.estimated_seconds for a in analyses):.6f}",
            f"{sum(a.actual_seconds for a in analyses):.6f}",
        ])
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def fmt(cells: List[str]) -> str:
        padded = []
        for i, cell in enumerate(cells):
            # left-align the operation column, right-align numbers
            if i == 1:
                padded.append(cell.ljust(widths[i]))
            else:
                padded.append(cell.rjust(widths[i]))
        return "  ".join(padded).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows[:len(analyses)]]
    if analyses:
        lines.append(fmt(["-" * w for w in widths]))
        lines.append(fmt(rows[-1]))
    return "\n".join(lines)
