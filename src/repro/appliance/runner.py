"""End-to-end DSQL plan execution (paper §2.4's execution walk-through).

``DsqlRunner.run`` executes a compiled :class:`repro.pdw.dsql.DsqlPlan`
against a simulated appliance: DMS steps move data into temp tables, the
Return step gathers result tuples through the control node, which applies
the final ORDER BY / TOP and hands the result to the "client".

With the parallel runtime on (``parallel=True``, or the
``REPRO_PARALLEL_RUNTIME`` environment override) the runner derives a
dependency DAG from each step's input temp tables and submits steps the
moment their inputs are materialized, so independent join subtrees —
e.g. TPC-H Q5's bushy shape — overlap instead of executing strictly in
index order.  Step stats are always assembled in index order, so
results and accounting are identical to the serial walk.

``run_reference`` executes the original query on the single-system image
(all data gathered in one storage map) for correctness comparison — the
distributed execution must produce exactly the same multiset of rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pdw.engine import CompiledQuery

from repro.appliance.dms_runtime import (
    DmsRuntime,
    GroundTruthConstants,
    StepExecutionStats,
)
from repro.appliance.interpreter import PlanInterpreter
from repro.appliance.scheduler import (
    StepDag,
    WorkerPool,
    resolve_parallel,
    run_dag,
)
from repro.appliance.storage import Appliance
from repro.catalog.statistics import sort_key
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.requests import NULL_REQUEST
from repro.common.errors import ExecutionError
from repro.common.executors import effective_executor, resolve_executor
from repro.optimizer.binder import Binder
from repro.optimizer.normalize import normalize
from repro.pdw.dsql import DsqlPlan, DsqlStep, StepKind
from repro.sql.parser import parse_query
from repro.telemetry import NULL_TRACER, Tracer
from repro.vector.executor import VectorInterpreter

#: Upper bound on concurrently executing DSQL steps.  Plans are small
#: (a handful of steps), and each step fans out its own node workers,
#: so a narrow step pool keeps total thread count proportional to the
#: appliance rather than to plan size.
MAX_STEP_WORKERS = 8


@dataclass
class ExecutionTiming:
    """Wall-clock breakdown of one query's trip through the stack.

    All figures are measured seconds (not simulated time): ``queue`` is
    admission wait, ``compile`` is optimizer time (0.0 on a plan-cache
    hit), ``execute`` is runner time, and ``total`` covers the whole
    call including bookkeeping between phases.
    """

    queue_seconds: float = 0.0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0


@dataclass
class QueryResult:
    """What the client receives, plus execution accounting.

    Iterating (or ``len()``-ing) a result iterates its rows, so callers
    that treated ``run()``'s output as a row list keep working.  The
    session and service additionally attach the compiled-plan handle,
    the plan-cache verdict and a wall-clock timing breakdown.
    """

    columns: List[str]
    rows: List[Tuple]
    elapsed_seconds: float
    step_stats: List[StepExecutionStats] = field(default_factory=list)
    plan: Optional["CompiledQuery"] = None
    cache_hit: bool = False
    timing: Optional[ExecutionTiming] = None
    # Correlation key across DMV rows, metrics and JSONL events (set
    # by the session/service when request tracking is live).
    request_id: Optional[str] = None

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def dms_seconds(self) -> float:
        """Pure data-movement time (the quantity the PDW cost model
        predicts) — local SQL extraction time is excluded."""
        return sum(
            s.movement_seconds for s in self.step_stats
            if s.operation is not None
        )

    @property
    def relational_seconds(self) -> float:
        return sum(s.relational_seconds for s in self.step_stats)

    @property
    def wall_seconds(self) -> float:
        """Measured wall clock summed over steps (not simulated time)."""
        return sum(s.wall_seconds for s in self.step_stats)

    def sorted_rows(self) -> List[Tuple]:
        """Rows in a canonical order (for comparisons in tests)."""
        return sorted(self.rows,
                      key=lambda row: tuple(sort_key(v) for v in row))


class DsqlRunner:
    """Executes DSQL plans: serially one step at a time (§2.4), or —
    with ``parallel=True`` — as a dependency DAG with node-parallel
    steps (§2.1's "single step typically involves parallel operations
    across multiple compute nodes", taken literally).

    ``executor`` selects the execution backend by name ("reference",
    "compiled", "vectorized", "numpy"); the legacy ``compiled`` boolean
    still picks between the first two when ``executor`` is not given.
    ``"numpy"`` degrades to ``"vectorized"`` (with one warning) when
    numpy is not importable.
    ``parallel=None`` (default) resolves to the serial walk unless the
    ``REPRO_PARALLEL_RUNTIME`` environment variable overrides it; the
    :class:`repro.session.PdwSession` front door defaults to parallel.
    """

    def __init__(self, appliance: Appliance,
                 truth: Optional[GroundTruthConstants] = None,
                 tracer: Tracer = NULL_TRACER,
                 compiled: bool = True,
                 metrics: MetricsRegistry = NULL_METRICS,
                 parallel: Optional[bool] = None,
                 executor: Optional[str] = None):
        self.appliance = appliance
        self.tracer = tracer
        self.executor = effective_executor(
            resolve_executor(executor, compiled))
        self.compiled = self.executor != "reference"
        self.metrics = metrics
        self.parallel = resolve_parallel(parallel, default=False)
        self.runtime = DmsRuntime(appliance, truth, tracer,
                                  compiled=self.compiled, metrics=metrics,
                                  parallel=self.parallel,
                                  executor=self.executor)
        self._step_pool = WorkerPool(
            min(MAX_STEP_WORKERS, max(2, appliance.node_count)),
            "repro-step")

    def run(self, plan: DsqlPlan, keep_temps: bool = False,
            profile: bool = False, request=NULL_REQUEST) -> QueryResult:
        """Execute a DSQL plan.  ``profile=True`` additionally collects
        per-node per-operator actuals and per-movement transfer matrices
        onto each step's :class:`StepExecutionStats` (see
        :func:`repro.obs.profiler.build_query_profile`).  ``request`` is
        the live request-lifecycle handle (default: the shared no-op) —
        step begin/end and per-node progress are reported through it so
        concurrent DMV readers see the execution at step granularity."""
        stats: List[StepExecutionStats] = []
        rows: List[Tuple] = []
        names: List[str] = list(plan.output_names)
        tracer = self.tracer
        self.runtime.profiling = profile
        if request.enabled:
            request.begin_plan(plan)
        try:
            with tracer.span("execute"):
                if self.parallel and len(plan.steps) > 1:
                    rows, names, stats = self._run_dag(plan, rows, names,
                                                       request)
                else:
                    for step in plan.steps:
                        with tracer.span(self._step_label(step)) as span:
                            request.begin_step(step.index)
                            if step.kind is StepKind.DMS:
                                step_stats = \
                                    self.runtime.execute_movement(
                                        step, request=request)
                            else:
                                rows, names, step_stats = \
                                    self.runtime.execute_return(
                                        step, request=request)
                            request.end_step(step.index, step_stats)
                            stats.append(step_stats)
                            if tracer.enabled:
                                span.set("rows", step_stats.rows_moved)
                                span.set("simulated_seconds",
                                         step_stats.elapsed_seconds)
                rows = self._finalize(plan, names, rows)
        finally:
            self.runtime.profiling = False
            if not keep_temps:
                self.appliance.drop_temp_tables()
        return QueryResult(
            columns=names,
            rows=rows,
            elapsed_seconds=sum(s.elapsed_seconds for s in stats),
            step_stats=stats,
        )

    @staticmethod
    def _step_label(step: DsqlStep) -> str:
        return (f"step{step.index}."
                + (step.movement.operation.value
                   if step.movement else "return"))

    def _run_dag(self, plan: DsqlPlan, rows: List[Tuple],
                 names: List[str], request=NULL_REQUEST
                 ) -> Tuple[List[Tuple], List[str],
                            List[StepExecutionStats]]:
        """DAG-scheduled execution: submit each step once its input
        temp tables are materialized.  Worker threads must not touch
        the tracer's span stack, so per-step spans are emitted post-hoc
        (index order, measured durations attached as attributes)."""
        dag = StepDag(plan)
        returned: Dict[int, Tuple[List[Tuple], List[str]]] = {}

        def execute(index: int) -> StepExecutionStats:
            step = plan.steps[index]
            request.begin_step(index)
            if step.kind is StepKind.DMS:
                step_stats = self.runtime.execute_movement(
                    step, request=request)
            else:
                step_rows, step_names, step_stats = \
                    self.runtime.execute_return(step, request=request)
                returned[index] = (step_rows, step_names)
            request.end_step(index, step_stats)
            return step_stats

        on_submit = request.step_scheduled if request.enabled else None
        results = run_dag(dag, execute, self._step_pool,
                          on_submit=on_submit)
        stats = [results[index] for index in range(len(plan.steps))]
        tracer = self.tracer
        if tracer.enabled:
            for step, step_stats in zip(plan.steps, stats):
                with tracer.span(self._step_label(step)) as span:
                    span.set("rows", step_stats.rows_moved)
                    span.set("simulated_seconds",
                             step_stats.elapsed_seconds)
                    span.set("wall_seconds", step_stats.wall_seconds)
        for index in sorted(returned):
            rows, names = returned[index]
        return rows, names, stats

    def _finalize(self, plan: DsqlPlan, names: List[str],
                  rows: List[Tuple]) -> List[Tuple]:
        """Control-node merge: global ORDER BY and TOP over gathered rows."""
        if plan.order_by:
            positions = []
            for column, ascending in plan.order_by:
                try:
                    positions.append((names.index(column), ascending))
                except ValueError:
                    raise ExecutionError(
                        f"ORDER BY column {column!r} missing from result")
            for position, ascending in reversed(positions):
                rows = sorted(rows,
                              key=lambda row: sort_key(row[position]),
                              reverse=not ascending)
        if plan.limit is not None:
            rows = rows[:plan.limit]
        return rows


def run_reference(appliance: Appliance, sql: str,
                  compiled: bool = True,
                  executor: Optional[str] = None) -> QueryResult:
    """Execute ``sql`` against the single-system image (ground truth).

    The bound tree is normalized first so comma-joins become hash joins —
    the naive interpreter would otherwise materialize raw cross products.
    The image itself is cached on the appliance (invalidated on loads and
    drops), so repeated reference runs skip re-gathering every fragment.
    ``compiled=False`` forces the tree-walking evaluator; ``executor``
    names any of the four backends outright.
    """
    statement = parse_query(sql)
    query = normalize(Binder(appliance.catalog).bind(statement))
    backend = effective_executor(resolve_executor(executor, compiled))
    if backend == "numpy":
        from repro.vector.np_executor import NumpyInterpreter
        interpreter = NumpyInterpreter(appliance.single_system_image())
    elif backend == "vectorized":
        interpreter = VectorInterpreter(appliance.single_system_image())
    else:
        interpreter = PlanInterpreter(appliance.single_system_image(),
                                      compiled=backend != "reference")
    rows = interpreter.run_query(query)
    return QueryResult(
        columns=list(query.output_names),
        rows=rows,
        elapsed_seconds=0.0,
    )
