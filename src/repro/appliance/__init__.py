"""The simulated appliance: distributed storage, the node-local SQL
interpreter, the DMS runtime with byte/time accounting, the DSQL plan
runner, and the λ calibration harness (§3.3.3)."""

from repro.appliance.calibration import (
    CalibrationResult,
    CalibrationSample,
    Calibrator,
)
from repro.appliance.dms_runtime import (
    DmsRuntime,
    GroundTruthConstants,
    StepExecutionStats,
)
from repro.appliance.interpreter import InterpreterStats, PlanInterpreter
from repro.appliance.runner import DsqlRunner, QueryResult, run_reference
from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    NodeStorage,
    node_for_row,
    pdw_hash,
    row_bytes,
    value_bytes,
)

__all__ = [
    "Appliance",
    "CONTROL_NODE",
    "CalibrationResult",
    "CalibrationSample",
    "Calibrator",
    "DmsRuntime",
    "DsqlRunner",
    "GroundTruthConstants",
    "InterpreterStats",
    "NodeStorage",
    "PlanInterpreter",
    "QueryResult",
    "StepExecutionStats",
    "node_for_row",
    "pdw_hash",
    "row_bytes",
    "run_reference",
    "value_bytes",
]
