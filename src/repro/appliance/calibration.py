"""Cost calibration (paper §3.3.3).

*"The constant λ is calculated via targeted performance tests after a
meticulous instrumentation of the source code.  We call the process of
defining the value of λ for each cost component cost calibration."*

The harness stages synthetic tables of controlled cardinality and row
width, runs each DMS operation against them, reads the instrumented
per-component times from the runtime, and fits one λ per component by
least squares through the origin (λ = Σb·t / Σb²) — with the reader fitted
twice, λ_direct and λ_hash, exactly as the paper found necessary.

It also reproduces the paper's observation that λ varies mildly with row
count, column count and column type but "not significantly enough to
justify stepping up the complexity of the cost model":
:func:`implied_lambda_spread` reports the per-sample implied λ spread.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.expressions import ColumnVar
from repro.algebra.properties import (
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    hashed_on,
)
from repro.appliance.dms_runtime import DmsRuntime, GroundTruthConstants
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.errors import ExecutionError
from repro.common.types import INTEGER, varchar
from repro.pdw.cost_model import CostConstants, DmsCostModel
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.dsql import DsqlStep, StepKind


@dataclass
class CalibrationSample:
    """One targeted performance test."""

    operation: DmsOperation
    rows: int
    width: int
    model_bytes: Tuple[float, float, float, float]  # reader/net/write/bulk
    measured_times: Tuple[float, float, float, float]

    def implied_lambda(self, component: int) -> Optional[float]:
        bytes_ = self.model_bytes[component]
        if bytes_ <= 0:
            return None
        return self.measured_times[component] / bytes_


@dataclass
class CalibrationResult:
    """Fitted constants plus the raw samples behind them."""

    constants: CostConstants
    samples: List[CalibrationSample] = field(default_factory=list)

    def implied_lambda_spread(self) -> Dict[str, Tuple[float, float]]:
        """(min, max) implied λ per component across all samples —
        the paper's linearity check."""
        names = ["reader", "network", "writer", "bulk_copy"]
        spread: Dict[str, Tuple[float, float]] = {}
        for index, name in enumerate(names):
            implied = [
                value for sample in self.samples
                if (value := sample.implied_lambda(index)) is not None
            ]
            if implied:
                spread[name] = (min(implied), max(implied))
        return spread


_DEFAULT_SIZES = ((500, 1), (2000, 1), (2000, 4), (5000, 2))

_CALIBRATABLE_OPS = (
    DmsOperation.SHUFFLE_MOVE,
    DmsOperation.PARTITION_MOVE,
    DmsOperation.BROADCAST_MOVE,
    DmsOperation.TRIM_MOVE,
    DmsOperation.REPLICATED_BROADCAST,
    DmsOperation.CONTROL_NODE_MOVE,
    DmsOperation.REMOTE_COPY,
)


class Calibrator:
    """Runs the §3.3.3 calibration against an appliance."""

    def __init__(self, node_count: int = 4,
                 truth: Optional[GroundTruthConstants] = None,
                 seed: int = 7):
        self.node_count = node_count
        self.truth = truth or GroundTruthConstants()
        self.seed = seed

    # -- staging -------------------------------------------------------------------

    def _staged_appliance(self, rows: int, extra_columns: int,
                          source_kind: DistKind) -> Tuple[Appliance, TableDef]:
        appliance = Appliance(self.node_count)
        columns = [Column("k", INTEGER), Column("payload", varchar(16))]
        for index in range(extra_columns):
            columns.append(Column(f"c{index}", INTEGER))
        if source_kind is DistKind.HASHED:
            distribution = hash_distributed("k")
        elif source_kind is DistKind.REPLICATED:
            distribution = REPLICATED
        else:
            distribution = ON_CONTROL
        table = TableDef("cal_source", columns, distribution)
        appliance.create_table(table)
        data = [
            tuple([i, f"payload-{i % 97:08d}"]
                  + [i * (j + 1) for j in range(extra_columns)])
            for i in range(rows)
        ]
        appliance.load_rows("cal_source", data)
        return appliance, table

    def _movement_for(self, operation: DmsOperation
                      ) -> Tuple[DistKind, Distribution]:
        """(source placement, target distribution) per operation."""
        hash_var = ColumnVar(1, "k", INTEGER)
        if operation is DmsOperation.SHUFFLE_MOVE:
            return DistKind.HASHED, hashed_on(hash_var.id)
        if operation is DmsOperation.PARTITION_MOVE:
            return DistKind.HASHED, ON_CONTROL_DIST
        if operation is DmsOperation.BROADCAST_MOVE:
            return DistKind.HASHED, REPLICATED_DIST
        if operation is DmsOperation.TRIM_MOVE:
            return DistKind.REPLICATED, hashed_on(hash_var.id)
        if operation is DmsOperation.REPLICATED_BROADCAST:
            return DistKind.REPLICATED, REPLICATED_DIST
        if operation is DmsOperation.CONTROL_NODE_MOVE:
            return DistKind.ON_CONTROL, REPLICATED_DIST
        if operation is DmsOperation.REMOTE_COPY:
            return DistKind.REPLICATED, ON_CONTROL_DIST
        raise ExecutionError(f"cannot calibrate {operation}")

    def run_one(self, operation: DmsOperation, rows: int,
                extra_columns: int) -> CalibrationSample:
        """Stage data, run one movement, return the instrumented sample."""
        source_kind, target = self._movement_for(operation)
        appliance, table = self._staged_appliance(rows, extra_columns,
                                                  source_kind)
        hash_var = ColumnVar(1, "k", INTEGER)
        if source_kind is DistKind.HASHED:
            source = hashed_on(hash_var.id)
        elif source_kind is DistKind.REPLICATED:
            source = REPLICATED_DIST
        else:
            source = ON_CONTROL_DIST
        hash_columns = (hash_var,) if target.kind is DistKind.HASHED else ()
        if operation is DmsOperation.REPLICATED_BROADCAST:
            source = Distribution(DistKind.SINGLE_NODE)
        movement = DataMovement(operation, source, target, hash_columns)

        column_list = ", ".join(c.name for c in table.columns)
        step = DsqlStep(
            index=0,
            kind=StepKind.DMS,
            sql=f"SELECT {column_list} FROM cal_source",
            source_location=source,
            movement=movement,
            destination_table=TableDef(
                "cal_target", list(table.columns),
                hash_distributed("k") if target.kind is DistKind.HASHED
                else (REPLICATED if target.kind is DistKind.REPLICATED
                      else ON_CONTROL),
                is_temp=True),
            hash_column="k" if hash_columns else None,
        )
        runtime = DmsRuntime(appliance, self.truth)
        stats = runtime.execute_movement(step)

        width = int(sum(
            16 if c.sql_type.is_string else 4 for c in table.columns))
        model = DmsCostModel(self.node_count)
        model_bytes = model.component_bytes(movement, float(rows),
                                            float(width))
        measured = stats.component_times(
            self.truth, movement.operation.uses_hashing)
        return CalibrationSample(operation, rows, width, model_bytes,
                                 measured)

    # -- the full calibration ------------------------------------------------------

    def calibrate(self,
                  sizes: Sequence[Tuple[int, int]] = _DEFAULT_SIZES,
                  operations: Sequence[DmsOperation] = _CALIBRATABLE_OPS
                  ) -> CalibrationResult:
        """Run the targeted tests and fit λ per component."""
        samples = [
            self.run_one(operation, rows, extra)
            for operation, (rows, extra)
            in itertools.product(operations, sizes)
        ]

        def fit(component: int, predicate) -> float:
            numerator = 0.0
            denominator = 0.0
            for sample in samples:
                if not predicate(sample):
                    continue
                bytes_ = sample.model_bytes[component]
                time_ = sample.measured_times[component]
                numerator += bytes_ * time_
                denominator += bytes_ * bytes_
            if denominator <= 0:
                return 0.0
            return numerator / denominator

        constants = CostConstants(
            lambda_reader_direct=fit(
                0, lambda s: not s.operation.uses_hashing),
            lambda_reader_hash=fit(0, lambda s: s.operation.uses_hashing),
            lambda_network=fit(1, lambda s: True),
            lambda_writer=fit(2, lambda s: True),
            lambda_bulk_copy=fit(3, lambda s: True),
        )
        return CalibrationResult(constants, samples)
