"""DMS runtime: executes data-movement steps with byte/time accounting.

This is the simulator counterpart of Figure 5's DMS operator.  Each
source node runs the step's SQL against its local DBMS (the interpreter),
packs the result rows, and routes them per the operation's tuple-routing
policy; each destination node unpacks and bulk-inserts into the step's
temp table.

Every component's processed bytes are counted per node, and a simulated
elapsed time is derived with the ground-truth λ constants and the paper's
max-composition: ``max(max(reader, network), max(writer, bulkcopy))`` over
nodes — so the calibration harness (§3.3.3) can fit λ from "targeted
performance tests" exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.properties import DistKind
from repro.appliance.interpreter import InterpreterStats, PlanInterpreter
from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    NodeStorage,
    node_for_row,
    row_bytes,
)
from repro.common.errors import DmsError
from repro.optimizer.binder import Binder
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import DsqlStep
from repro.sql.parser import parse_query
from repro.telemetry import NULL_TRACER, Tracer


@dataclass(frozen=True)
class GroundTruthConstants:
    """The simulator's *actual* per-byte costs, in seconds.

    The optimizer's :class:`repro.pdw.cost_model.CostConstants` are the
    *calibrated estimates* of these; by default they agree (a freshly
    calibrated appliance), and benchmarks perturb them to study model
    error.
    """

    reader_direct: float = 1.0e-8
    reader_hash: float = 1.6e-8
    network: float = 2.5e-8
    writer: float = 1.2e-8
    bulk_copy: float = 3.0e-8
    # Local SQL execution cost per row touched.  Chosen so that scanning
    # a row is cheap relative to materializing it through DMS (the
    # paper's premise: "data movement processing times tend to dominate
    # queries overall execution times in PDW due to materializing data to
    # temp tables", 3.3).
    relational_per_row: float = 2.0e-8


@dataclass
class StepExecutionStats:
    """Per-step accounting: bytes per component per node + elapsed time."""

    step_index: int
    operation: Optional[DmsOperation]
    reader_bytes: Dict[int, int] = field(default_factory=dict)
    network_bytes: Dict[int, int] = field(default_factory=dict)
    writer_bytes: Dict[int, int] = field(default_factory=dict)
    bulk_bytes: Dict[int, int] = field(default_factory=dict)
    rows_moved: int = 0
    relational_rows: int = 0
    movement_seconds: float = 0.0    # max-composed DMS component time
    relational_seconds: float = 0.0  # local SQL extraction time
    elapsed_seconds: float = 0.0     # movement + relational

    def component_times(self, truth: GroundTruthConstants,
                        uses_hashing: bool) -> Tuple[float, float, float, float]:
        reader_lambda = (truth.reader_hash if uses_hashing
                         else truth.reader_direct)
        reader = max(self.reader_bytes.values(), default=0) * reader_lambda
        network = max(self.network_bytes.values(), default=0) * truth.network
        writer = max(self.writer_bytes.values(), default=0) * truth.writer
        bulk = max(self.bulk_bytes.values(), default=0) * truth.bulk_copy
        return reader, network, writer, bulk

    def total_bytes(self) -> int:
        return sum(self.reader_bytes.values())


class DmsRuntime:
    """Executes DSQL steps against an :class:`Appliance`."""

    def __init__(self, appliance: Appliance,
                 truth: Optional[GroundTruthConstants] = None,
                 tracer: Tracer = NULL_TRACER):
        self.appliance = appliance
        self.truth = truth or GroundTruthConstants()
        self.tracer = tracer

    def _record_movement(self, stats: StepExecutionStats,
                         operation: Optional[DmsOperation]) -> None:
        """Aggregate per-operation-kind byte/row/time counters."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        kind = operation.value if operation is not None else "return"
        # DMS steps read every moved row on the source side; the Return
        # step only ships network bytes up to the control node.
        moved = (stats.total_bytes() if operation is not None
                 else sum(stats.network_bytes.values()))
        tracer.count("dms.rows_moved", stats.rows_moved)
        tracer.count("dms.bytes_moved", moved)
        tracer.count("dms.seconds", stats.movement_seconds)
        tracer.count(f"dms.rows.{kind}", stats.rows_moved)
        tracer.count(f"dms.bytes.{kind}", moved)
        tracer.count(f"dms.seconds.{kind}", stats.movement_seconds)

    # -- node-local SQL ------------------------------------------------------------

    def run_sql_on_node(self, sql: str, node: NodeStorage,
                        stats: Optional[InterpreterStats] = None
                        ) -> Tuple[List[Tuple], List[str]]:
        """Parse, bind and interpret a step's SQL on one node."""
        statement = parse_query(sql)
        query = Binder(self.appliance.catalog).bind(statement)
        interpreter = PlanInterpreter(node.tables, stats)
        rows = interpreter.run_query(query)
        return rows, query.output_names

    def _source_nodes(self, step: DsqlStep) -> List[NodeStorage]:
        location = step.source_location
        operation = step.movement.operation if step.movement else None
        if location.kind is DistKind.ON_CONTROL:
            return [self.appliance.control]
        if location.kind is DistKind.REPLICATED:
            if operation is DmsOperation.TRIM_MOVE:
                return list(self.appliance.compute)
            return [self.appliance.compute[0]]
        if location.kind is DistKind.SINGLE_NODE:
            return [self.appliance.compute[0]]
        return list(self.appliance.compute)

    # -- movement execution -----------------------------------------------------------

    def execute_movement(self, step: DsqlStep) -> StepExecutionStats:
        if step.movement is None or step.destination_table is None:
            raise DmsError(f"step {step.index} is not a DMS step")
        movement = step.movement
        destination = step.destination_table
        self.appliance.create_temp_table(destination)

        stats = StepExecutionStats(step.index, movement.operation)
        node_count = self.appliance.node_count
        hash_index = (
            destination.column_index(step.hash_column)
            if step.hash_column is not None else None
        )

        received: Dict[int, List[Tuple]] = {}

        for source in self._source_nodes(step):
            sql_stats = InterpreterStats()
            rows, _names = self.run_sql_on_node(step.sql, source, sql_stats)
            stats.relational_rows += (
                sql_stats.rows_scanned + sql_stats.rows_processed)
            source_read = sum(row_bytes(r) for r in rows)
            stats.reader_bytes[source.node_id] = (
                stats.reader_bytes.get(source.node_id, 0) + source_read)
            stats.rows_moved += len(rows)

            for row in rows:
                targets = self._route(movement.operation, row, hash_index,
                                      node_count, source.node_id)
                size = row_bytes(row)
                for target_id in targets:
                    if target_id != source.node_id:
                        stats.network_bytes[source.node_id] = (
                            stats.network_bytes.get(source.node_id, 0)
                            + size)
                    received.setdefault(target_id, []).append(row)

        for target_id, rows in received.items():
            node = self.appliance.node_storage(target_id)
            incoming = sum(row_bytes(r) for r in rows)
            stats.writer_bytes[target_id] = incoming
            stats.bulk_bytes[target_id] = incoming
            node.insert(destination.name, rows)

        reader, network, writer, bulk = stats.component_times(
            self.truth, movement.operation.uses_hashing)
        stats.movement_seconds = max(max(reader, network),
                                     max(writer, bulk))
        stats.relational_seconds = (
            stats.relational_rows * self.truth.relational_per_row)
        stats.elapsed_seconds = (stats.movement_seconds
                                 + stats.relational_seconds)
        self._record_movement(stats, movement.operation)
        return stats

    def _route(self, operation: DmsOperation, row: Tuple,
               hash_index: Optional[int], node_count: int,
               source_id: int) -> List[int]:
        if operation in (DmsOperation.SHUFFLE_MOVE,):
            if hash_index is None:
                raise DmsError("shuffle move without a hash column")
            return [node_for_row(row, [hash_index], node_count)]
        if operation is DmsOperation.TRIM_MOVE:
            if hash_index is None:
                raise DmsError("trim move without a hash column")
            owner = node_for_row(row, [hash_index], node_count)
            return [owner] if owner == source_id else []
        if operation in (DmsOperation.BROADCAST_MOVE,
                         DmsOperation.CONTROL_NODE_MOVE,
                         DmsOperation.REPLICATED_BROADCAST):
            return list(range(node_count))
        if operation in (DmsOperation.PARTITION_MOVE,
                         DmsOperation.REMOTE_COPY):
            return [CONTROL_NODE]
        raise DmsError(f"unknown DMS operation {operation}")

    # -- return step --------------------------------------------------------------------

    def execute_return(self, step: DsqlStep) -> Tuple[List[Tuple], List[str],
                                                      StepExecutionStats]:
        """Run the final Return SQL and gather rows at the control node."""
        stats = StepExecutionStats(step.index, None)
        rows: List[Tuple] = []
        names: List[str] = []
        for source in self._source_nodes(step):
            sql_stats = InterpreterStats()
            node_rows, names = self.run_sql_on_node(step.sql, source,
                                                    sql_stats)
            stats.relational_rows += (
                sql_stats.rows_scanned + sql_stats.rows_processed)
            if source.node_id != CONTROL_NODE:
                stats.network_bytes[source.node_id] = sum(
                    row_bytes(r) for r in node_rows)
            rows.extend(node_rows)
        stats.movement_seconds = max(
            stats.network_bytes.values(), default=0) * self.truth.network
        stats.relational_seconds = (
            stats.relational_rows * self.truth.relational_per_row)
        stats.elapsed_seconds = (stats.movement_seconds
                                 + stats.relational_seconds)
        stats.rows_moved = len(rows)
        self._record_movement(stats, None)
        return rows, names, stats
