"""DMS runtime: executes data-movement steps with byte/time accounting.

This is the simulator counterpart of Figure 5's DMS operator.  Each
source node runs the step's SQL against its local DBMS (the interpreter),
packs the result rows, and routes them per the operation's tuple-routing
policy; each destination node unpacks and bulk-inserts into the step's
temp table.

Every component's processed bytes are counted per node, and a simulated
elapsed time is derived with the ground-truth λ constants and the paper's
max-composition: ``max(max(reader, network), max(writer, bulkcopy))`` over
nodes — so the calibration harness (§3.3.3) can fit λ from "targeted
performance tests" exactly as the paper describes.

Node parallelism (§2.1, §2.4): with ``parallel=True`` the per-node
extract+route work of a step runs on a thread pool (one worker per
node), and routing uses the fast path — a single fused pass per source
batch that sizes each row, hashes it once and appends it into a
preallocated per-target bucket table.  Results are merged in node-id
order, so rows, stats and profiles are identical to the serial backend;
the serial path keeps the original per-row ``dict.setdefault``
accounting as the reference implementation.  Broadcast-style moves
deliver one shared row list to every target in **both** modes (the
destination node copies only if it later mutates), instead of
materializing N copies of every row.
"""

from __future__ import annotations

import operator
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.logical import Query, collect_gets
from repro.algebra.properties import DistKind
from repro.appliance.interpreter import InterpreterStats, PlanInterpreter
from repro.appliance.scheduler import WorkerPool, resolve_parallel
from repro.appliance.storage import (
    Appliance,
    CONTROL_NODE,
    NodeStorage,
    node_for_row,
    pdw_hash,
    row_bytes,
)
from repro.common.errors import DmsError
from repro.common.executors import effective_executor, resolve_executor
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.profiler import OperatorObserver
from repro.obs.requests import NULL_REQUEST
from repro.optimizer.binder import Binder
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import DsqlStep
from repro.sql.parser import parse_query
from repro.telemetry import NULL_TRACER, Tracer
from repro.vector.executor import VectorInterpreter


@dataclass(frozen=True)
class GroundTruthConstants:
    """The simulator's *actual* per-byte costs, in seconds.

    The optimizer's :class:`repro.pdw.cost_model.CostConstants` are the
    *calibrated estimates* of these; by default they agree (a freshly
    calibrated appliance), and benchmarks perturb them to study model
    error.
    """

    reader_direct: float = 1.0e-8
    reader_hash: float = 1.6e-8
    network: float = 2.5e-8
    writer: float = 1.2e-8
    bulk_copy: float = 3.0e-8
    # Local SQL execution cost per row touched.  Chosen so that scanning
    # a row is cheap relative to materializing it through DMS (the
    # paper's premise: "data movement processing times tend to dominate
    # queries overall execution times in PDW due to materializing data to
    # temp tables", 3.3).
    relational_per_row: float = 2.0e-8


@dataclass
class StepExecutionStats:
    """Per-step accounting: bytes per component per node + elapsed time.

    ``node_rows`` (rows each executing node's local SQL produced) is
    always recorded — one dict store per node per step.  The remaining
    profiling fields are populated only under a profiled run
    (``DsqlRunner.run(plan, profile=True)``): ``transfers`` is the
    per-movement N×N matrix ``(source, destination) → [rows, bytes]``
    and ``node_operators`` maps each node to the postorder
    ``(kind, label, rows_out)`` records its interpreter observed.

    ``node_wall_seconds`` / ``wall_seconds`` are *measured* wall-clock
    actuals (per node-task and per step), unlike the simulated
    ``*_seconds`` fields; they differ between the serial and parallel
    backends and are excluded from equivalence comparisons.
    """

    step_index: int
    operation: Optional[DmsOperation]
    reader_bytes: Dict[int, int] = field(default_factory=dict)
    network_bytes: Dict[int, int] = field(default_factory=dict)
    writer_bytes: Dict[int, int] = field(default_factory=dict)
    bulk_bytes: Dict[int, int] = field(default_factory=dict)
    rows_moved: int = 0
    relational_rows: int = 0
    movement_seconds: float = 0.0    # max-composed DMS component time
    relational_seconds: float = 0.0  # local SQL extraction time
    elapsed_seconds: float = 0.0     # movement + relational
    node_rows: Dict[int, int] = field(default_factory=dict)
    transfers: Dict[Tuple[int, int], List[int]] = field(
        default_factory=dict)
    node_operators: Dict[int, List[Tuple[str, str, int]]] = field(
        default_factory=dict)
    node_wall_seconds: Dict[int, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def component_times(self, truth: GroundTruthConstants,
                        uses_hashing: bool) -> Tuple[float, float, float, float]:
        reader_lambda = (truth.reader_hash if uses_hashing
                         else truth.reader_direct)
        reader = max(self.reader_bytes.values(), default=0) * reader_lambda
        network = max(self.network_bytes.values(), default=0) * truth.network
        writer = max(self.writer_bytes.values(), default=0) * truth.writer
        bulk = max(self.bulk_bytes.values(), default=0) * truth.bulk_copy
        return reader, network, writer, bulk

    def total_bytes(self) -> int:
        return sum(self.reader_bytes.values())


@dataclass
class _CachedStep:
    """A step's SQL parsed + bound once, reusable on every node."""

    query: Query
    tables: FrozenSet[str]  # lower-cased names the bound tree reads


# Bounded so a long-lived session executing many distinct queries cannot
# grow the cache without limit (steps are tiny; the bound trees are not).
_STEP_CACHE_LIMIT = 256


#: One routed delivery: (target node id, row batch, batch bytes).  The
#: batch list may be *shared* between targets (broadcast) — consumers
#: must treat it as immutable and go through ``NodeStorage.adopt`` /
#: ``insert`` which copy on mutation.
Delivery = Tuple[int, List[Tuple], int]


def route_batch_fast(operation: DmsOperation, rows: List[Tuple],
                     sizes: List[int], hash_index: Optional[int],
                     node_count: int, source_id: int
                     ) -> Tuple[List[Delivery], int]:
    """Shuffle routing fast path: pure per-source tuple routing.

    One pass over the batch appends each row into a preallocated
    per-target bucket table (no per-row ``dict.setdefault`` / ``get``),
    with byte totals summed per bucket; broadcast-style moves deliver a
    single shared row list to every target.  Returns the per-target
    deliveries plus the bytes this source puts on the network (rows
    routed to a node other than itself).  Byte/row accounting is
    bit-identical to :meth:`DmsRuntime._route_batch_reference`.
    """
    if not rows:
        return [], 0

    if operation is DmsOperation.SHUFFLE_MOVE:
        if hash_index is None:
            raise DmsError("shuffle move without a hash column")
        buckets: List[List[Tuple]] = [[] for _ in range(node_count)]
        bucket_bytes = [0] * node_count
        for row, size in zip(rows, sizes):
            owner = pdw_hash(row[hash_index]) % node_count
            buckets[owner].append(row)
            bucket_bytes[owner] += size
        deliveries = [
            (owner, buckets[owner], bucket_bytes[owner])
            for owner in range(node_count) if buckets[owner]
        ]
        sent = sum(
            bucket_bytes[owner] for owner in range(node_count)
            if buckets[owner] and owner != source_id
        )
        return deliveries, sent

    if operation is DmsOperation.TRIM_MOVE:
        if hash_index is None:
            raise DmsError("trim move without a hash column")
        kept: List[Tuple] = []
        kept_bytes = 0
        for row, size in zip(rows, sizes):
            if pdw_hash(row[hash_index]) % node_count == source_id:
                kept.append(row)
                kept_bytes += size
        if kept:
            return [(source_id, kept, kept_bytes)], 0
        return [], 0  # trimmed rows never leave their node

    if operation in (DmsOperation.BROADCAST_MOVE,
                     DmsOperation.CONTROL_NODE_MOVE,
                     DmsOperation.REPLICATED_BROADCAST):
        total = sum(sizes)
        # One shared list for every target — no per-target copies.
        deliveries = [(target_id, rows, total)
                      for target_id in range(node_count)]
        remote_targets = node_count - (
            1 if 0 <= source_id < node_count else 0)
        return deliveries, total * remote_targets

    if operation in (DmsOperation.PARTITION_MOVE,
                     DmsOperation.REMOTE_COPY):
        total = sum(sizes)
        return ([(CONTROL_NODE, rows, total)],
                0 if source_id == CONTROL_NODE else total)

    raise DmsError(f"unknown DMS operation {operation}")


def route_batch_columnar(operation: DmsOperation, rows: List[Tuple],
                         sizes: List[int], hash_index: Optional[int],
                         node_count: int, source_id: int
                         ) -> Tuple[List[Delivery], int]:
    """Column-at-a-time routing for the vectorized backend.

    The distribution key is lifted out of the row batch as one column,
    ``pdw_hash`` runs over the whole key column in a single pass, and
    the resulting owner vector drives a bucket-wise scatter of rows and
    sizes — the hash/modulo work never interleaves with per-row tuple
    handling.  Broadcast-style moves are already batch-level and share
    :func:`route_batch_fast`'s single-shared-list path.  Byte/row
    accounting is bit-identical to both row routers; the equivalence
    tests pin all three against each other.
    """
    if not rows:
        return [], 0

    if operation is DmsOperation.SHUFFLE_MOVE:
        if hash_index is None:
            raise DmsError("shuffle move without a hash column")
        pick = operator.itemgetter(hash_index)
        owners = [pdw_hash(key) % node_count for key in map(pick, rows)]
        buckets: List[List[Tuple]] = [[] for _ in range(node_count)]
        bucket_bytes = [0] * node_count
        for owner, row, size in zip(owners, rows, sizes):
            buckets[owner].append(row)
            bucket_bytes[owner] += size
        deliveries = [
            (owner, buckets[owner], bucket_bytes[owner])
            for owner in range(node_count) if buckets[owner]
        ]
        sent = sum(
            bucket_bytes[owner] for owner in range(node_count)
            if buckets[owner] and owner != source_id
        )
        return deliveries, sent

    if operation is DmsOperation.TRIM_MOVE:
        if hash_index is None:
            raise DmsError("trim move without a hash column")
        pick = operator.itemgetter(hash_index)
        owners = [pdw_hash(key) % node_count for key in map(pick, rows)]
        kept = [row for owner, row in zip(owners, rows)
                if owner == source_id]
        if not kept:
            return [], 0  # trimmed rows never leave their node
        kept_bytes = sum(size for owner, size in zip(owners, sizes)
                         if owner == source_id)
        return [(source_id, kept, kept_bytes)], 0

    return route_batch_fast(operation, rows, sizes, hash_index,
                            node_count, source_id)


def route_batch_numpy(operation: DmsOperation, rows: List[Tuple],
                      sizes: List[int], hash_index: Optional[int],
                      node_count: int, source_id: int
                      ) -> Tuple[List[Delivery], int]:
    """Vectorized-hash routing for the numpy backend.

    When the distribution key column is all plain ``int`` (the common
    case — TPC-H distribution keys are integer surrogates), the whole
    column is hashed in one vectorized CRC32 pass
    (:func:`repro.vector.np_batch.int_key_owners`) that releases the
    GIL for the table lookups, and bucket byte totals come from one
    ``np.add.at`` scatter over the exact int64 sizes.  Keys of any
    other type (or ints outside int64 range) fall back to
    :func:`route_batch_columnar`, whose per-key ``pdw_hash`` loop the
    vectorized pass matches bit-for-bit.  Accounting is identical to
    all three other routers; the equivalence tests pin all four
    against each other.
    """
    if not rows:
        return [], 0

    if operation in (DmsOperation.SHUFFLE_MOVE, DmsOperation.TRIM_MOVE):
        if hash_index is None:
            raise DmsError(f"{operation.value} without a hash column")
        from repro.vector.np_batch import int_key_owners
        pick = operator.itemgetter(hash_index)
        owners = int_key_owners(list(map(pick, rows)), node_count)
        if owners is None:
            return route_batch_columnar(operation, rows, sizes,
                                        hash_index, node_count, source_id)
        import numpy as np

        if operation is DmsOperation.TRIM_MOVE:
            keep = owners == source_id
            if not keep.any():
                return [], 0  # trimmed rows never leave their node
            kept = [row for flag, row in zip(keep.tolist(), rows) if flag]
            kept_bytes = int(
                (np.asarray(sizes, dtype=np.int64)[keep]).sum())
            return [(source_id, kept, kept_bytes)], 0

        bucket_bytes = np.zeros(node_count, dtype=np.int64)
        np.add.at(bucket_bytes, owners, np.asarray(sizes, dtype=np.int64))
        buckets: List[List[Tuple]] = [[] for _ in range(node_count)]
        for owner, row in zip(owners.tolist(), rows):
            buckets[owner].append(row)
        totals = bucket_bytes.tolist()
        deliveries = [
            (owner, buckets[owner], totals[owner])
            for owner in range(node_count) if buckets[owner]
        ]
        sent = sum(
            totals[owner] for owner in range(node_count)
            if buckets[owner] and owner != source_id
        )
        return deliveries, sent

    return route_batch_fast(operation, rows, sizes, hash_index,
                            node_count, source_id)


@dataclass
class _SourceRun:
    """One node's extract+route output, merged in node order."""

    node_id: int
    rows: List[Tuple]
    names: List[str]
    read_bytes: int
    relational_rows: int
    deliveries: List[Delivery]
    sent: int
    observer: Optional[OperatorObserver]
    wall_seconds: float


class DmsRuntime:
    """Executes DSQL steps against an :class:`Appliance`.

    With ``compiled=True`` (default) each DSQL step's SQL text is parsed
    and bound **once** and the bound plan is re-run against every node's
    local tables with the closure-compiled executor; ``compiled=False``
    restores the reference behaviour (re-parse per node, tree-walking
    evaluator).  Cache effectiveness is observable through the
    ``exec.compile_cache_hit`` / ``exec.compile_cache_miss`` telemetry
    counters.

    ``parallel`` selects the runtime backend (default serial; the
    ``REPRO_PARALLEL_RUNTIME`` environment variable overrides the
    default): with it on, every source node's extract+route work runs
    on a thread pool sized to the appliance's node count and routing
    takes the fast path (:func:`route_batch_fast`).  The parse/bind
    caches are lock-guarded, so worker threads share them safely.

    ``executor`` names the node-local backend outright ("reference",
    "compiled", "vectorized", "numpy"); when given it supersedes the
    legacy ``compiled`` boolean.  ``"vectorized"`` runs step SQL
    through :class:`repro.vector.VectorInterpreter` and routes DMS
    batches column-wise (:func:`route_batch_columnar`) in both runtime
    modes; ``"numpy"`` runs the typed-ndarray interpreter
    (:class:`repro.vector.np_executor.NumpyInterpreter`) and hashes
    integer distribution keys with a vectorized CRC32 pass
    (:func:`route_batch_numpy`).  Both share the compiled backend's
    step bind cache, and ``"numpy"`` degrades to ``"vectorized"``
    (with a single warning) when numpy is not importable.
    """

    def __init__(self, appliance: Appliance,
                 truth: Optional[GroundTruthConstants] = None,
                 tracer: Tracer = NULL_TRACER,
                 compiled: bool = True,
                 metrics: MetricsRegistry = NULL_METRICS,
                 parallel: Optional[bool] = None,
                 executor: Optional[str] = None):
        self.appliance = appliance
        self.truth = truth or GroundTruthConstants()
        self.tracer = tracer
        # ``executor`` is canonical; the legacy boolean is re-derived
        # from it so the step bind cache keeps its contract (only the
        # reference backend re-parses per node).  ``"numpy"`` degrades
        # to ``"vectorized"`` here when numpy is absent (front doors
        # that resolve options have already downgraded, so the warning
        # fires once either way).
        self.executor = effective_executor(
            resolve_executor(executor, compiled))
        self.compiled = self.executor != "reference"
        self.metrics = metrics
        self.parallel = resolve_parallel(parallel, default=False)
        # Profiled runs (DsqlRunner.run(profile=True)) flip this on to
        # collect transfer matrices and per-operator actuals.
        self.profiling = False
        self._node_pool = WorkerPool(appliance.node_count, "repro-node")
        self._cache_lock = threading.RLock()
        self._step_cache: "OrderedDict[str, _CachedStep]" = OrderedDict()
        # Parse trees are schema-independent, so they survive the
        # temp-table evictions that invalidate bound entries.
        self._parse_cache: Dict[str, object] = {}

    def _record_movement(self, stats: StepExecutionStats,
                         operation: Optional[DmsOperation]) -> None:
        """Aggregate per-operation-kind byte/row/time counters."""
        tracer = self.tracer
        kind = operation.value if operation is not None else "return"
        if tracer.enabled:
            # DMS steps read every moved row on the source side; the
            # Return step only ships network bytes up to the control node.
            moved = (stats.total_bytes() if operation is not None
                     else sum(stats.network_bytes.values()))
            tracer.count("dms.rows_moved", stats.rows_moved)
            tracer.count("dms.bytes_moved", moved)
            tracer.count("dms.seconds", stats.movement_seconds)
            tracer.count(f"dms.rows.{kind}", stats.rows_moved)
            tracer.count(f"dms.bytes.{kind}", moved)
            tracer.count(f"dms.seconds.{kind}", stats.movement_seconds)
        metrics = self.metrics
        if metrics.enabled:
            step = str(stats.step_index)
            rows_counter = metrics.counter(
                "pdw_step_rows_total",
                "Rows produced per source node per DSQL step",
                labelnames=("step", "op", "node"))
            bytes_counter = metrics.counter(
                "pdw_step_reader_bytes_total",
                "Bytes read per source node per DSQL step",
                labelnames=("step", "op", "node"))
            for node, rows in stats.node_rows.items():
                rows_counter.labels(step=step, op=kind,
                                    node=str(node)).inc(rows)
            for node, nbytes in stats.reader_bytes.items():
                bytes_counter.labels(step=step, op=kind,
                                     node=str(node)).inc(nbytes)
            metrics.counter(
                "pdw_dms_rows_moved_total",
                "Rows moved per DMS operation kind",
                labelnames=("op",)).labels(op=kind).inc(stats.rows_moved)
            metrics.histogram(
                "pdw_step_seconds",
                "Simulated elapsed seconds per DSQL step",
                labelnames=("op",)).labels(op=kind).observe(
                    stats.elapsed_seconds)
            # Measured (not simulated) per-node wall clock of the
            # extract+route task — the skew a real scheduler would see.
            wall_gauge = metrics.gauge(
                "pdw_step_node_wall_seconds",
                "Measured wall-clock seconds per node task per DSQL step",
                labelnames=("step", "op", "node"))
            for node, wall in stats.node_wall_seconds.items():
                wall_gauge.labels(step=step, op=kind,
                                  node=str(node)).set(wall)

    # -- node-local SQL ------------------------------------------------------------

    def run_sql_on_node(self, sql: str, node: NodeStorage,
                        stats: Optional[InterpreterStats] = None,
                        observer: Optional[OperatorObserver] = None
                        ) -> Tuple[List[Tuple], List[str]]:
        """Bind (cached) and execute a step's SQL on one node."""
        query = self._bind_step(sql)
        # Snapshot the node's table map before handing it over: a system-
        # view refresh on another thread swaps dm_pdw_* fragments in and
        # out of the live dict, and the interpreter constructors iterate
        # their input.  dict.copy() is a single atomic op; the values are
        # shared list references, so this costs one small dict per step.
        tables = node.tables.copy()
        if self.executor == "numpy":
            # Imported lazily: the constructor has already verified
            # numpy is importable (effective_executor), and numpy-less
            # environments must never pay — or fail on — this import.
            from repro.vector.np_executor import NumpyInterpreter
            interpreter = NumpyInterpreter(tables, stats,
                                           observer=observer)
        elif self.executor == "vectorized":
            interpreter = VectorInterpreter(tables, stats,
                                            observer=observer)
        else:
            interpreter = PlanInterpreter(tables, stats,
                                          compiled=self.compiled,
                                          observer=observer)
        rows = interpreter.run_query(query)
        return rows, query.output_names

    def _bind_step(self, sql: str) -> Query:
        """Parse + bind ``sql`` once per step; re-runs hit the cache.

        Lock-guarded: under the parallel runtime every node worker calls
        this concurrently, and the first caller must finish binding
        before the others read the entry (same hit/miss counts as the
        serial backend)."""
        if not self.compiled:
            # Reference path: re-parse per node, exactly the old cost.
            return Binder(self.appliance.catalog).bind(parse_query(sql))
        with self._cache_lock:
            cached = self._step_cache.get(sql)
            if cached is not None:
                self._step_cache.move_to_end(sql)
                self.tracer.count("exec.compile_cache_hit")
                return cached.query
            self.tracer.count("exec.compile_cache_miss")
            statement = self._parse_cache.get(sql)
            if statement is None:
                statement = parse_query(sql)
                if len(self._parse_cache) >= _STEP_CACHE_LIMIT:
                    self._parse_cache.clear()
                self._parse_cache[sql] = statement
            query = Binder(self.appliance.catalog).bind(statement)
            tables = frozenset(
                get.table.name.lower() for get in collect_gets(query.root))
            self._step_cache[sql] = _CachedStep(query, tables)
            if len(self._step_cache) > _STEP_CACHE_LIMIT:
                self._step_cache.popitem(last=False)
            return query

    def _evict_cached(self, table_name: str) -> None:
        """Drop cached steps reading ``table_name`` — called when a temp
        table is (re)created, since the same TEMP_ID_k name can carry a
        different schema on the next query."""
        lowered = table_name.lower()
        with self._cache_lock:
            stale = [sql for sql, cached in self._step_cache.items()
                     if lowered in cached.tables]
            for sql in stale:
                del self._step_cache[sql]

    def _source_nodes(self, step: DsqlStep) -> List[NodeStorage]:
        location = step.source_location
        operation = step.movement.operation if step.movement else None
        if location.kind is DistKind.ON_CONTROL:
            return [self.appliance.control]
        if location.kind is DistKind.REPLICATED:
            if operation is DmsOperation.TRIM_MOVE:
                return list(self.appliance.compute)
            return [self.appliance.compute[0]]
        if location.kind is DistKind.SINGLE_NODE:
            return [self.appliance.compute[0]]
        return list(self.appliance.compute)

    # -- movement execution -----------------------------------------------------------

    def _run_sources(self, step: DsqlStep,
                     hash_index: Optional[int],
                     request=NULL_REQUEST) -> List[_SourceRun]:
        """Run extract+route for every source node of a step.

        Under the parallel runtime the per-node tasks run concurrently
        on the node pool; results always come back in source-node order,
        so the caller's merge is deterministic either way.  ``request``
        receives one ``node_done`` progress report per source node as
        its task finishes — the live feed behind
        ``sys.dm_pdw_dms_workers``."""
        node_count = self.appliance.node_count
        operation = step.movement.operation if step.movement else None
        profiling = self.profiling
        parallel = self.parallel
        # The columnar backends route column-wise in both runtime
        # modes (the numpy backend additionally hashes the whole key
        # column in one vectorized pass); otherwise the parallel
        # runtime takes the fused fast path and the serial walk keeps
        # the reference router.
        if self.executor == "numpy":
            route = route_batch_numpy
        elif self.executor == "vectorized":
            route = route_batch_columnar
        elif parallel:
            route = route_batch_fast
        else:
            route = self._route_batch_reference

        def run_one(source: NodeStorage) -> _SourceRun:
            started = time.perf_counter()
            sql_stats = InterpreterStats()
            observer = OperatorObserver() if profiling else None
            rows, names = self.run_sql_on_node(step.sql, source,
                                               sql_stats, observer)
            source_id = source.node_id
            if operation is None:
                # Return step: no routing, only network accounting.
                sizes_total = (sum(row_bytes(r) for r in rows)
                               if source_id != CONTROL_NODE else 0)
                deliveries: List[Delivery] = []
                sent = sizes_total
            else:
                # One row_bytes pass per batch serves reader, network
                # and writer accounting alike.
                sizes = [row_bytes(r) for r in rows]
                sizes_total = sum(sizes)
                deliveries, sent = route(
                    operation, rows, sizes, hash_index,
                    node_count, source_id)
            run = _SourceRun(
                node_id=source_id,
                rows=rows,
                names=names,
                read_bytes=sizes_total,
                relational_rows=(sql_stats.rows_scanned
                                 + sql_stats.rows_processed),
                deliveries=deliveries,
                sent=sent,
                observer=observer,
                wall_seconds=time.perf_counter() - started,
            )
            if request.enabled:
                request.node_done(step.index, source_id, len(rows),
                                  sizes_total, run.wall_seconds)
            return run

        sources = self._source_nodes(step)
        if parallel and len(sources) > 1:
            return self._node_pool.map_ordered(run_one, sources)
        return [run_one(source) for source in sources]

    def execute_movement(self, step: DsqlStep,
                         request=NULL_REQUEST) -> StepExecutionStats:
        if step.movement is None or step.destination_table is None:
            raise DmsError(f"step {step.index} is not a DMS step")
        started = time.perf_counter()
        movement = step.movement
        destination = step.destination_table
        self.appliance.create_temp_table(destination)
        self._evict_cached(destination.name)

        stats = StepExecutionStats(step.index, movement.operation)
        hash_index = (
            destination.column_index(step.hash_column)
            if step.hash_column is not None else None
        )

        received: Dict[int, List[List[Tuple]]] = {}
        received_bytes: Dict[int, int] = {}
        profiling = self.profiling

        # Merge in source-node order — identical accounting and row
        # order whether the sources ran serially or on the pool.
        for run in self._run_sources(step, hash_index, request):
            source_id = run.node_id
            stats.relational_rows += run.relational_rows
            stats.reader_bytes[source_id] = (
                stats.reader_bytes.get(source_id, 0) + run.read_bytes)
            stats.node_rows[source_id] = (
                stats.node_rows.get(source_id, 0) + len(run.rows))
            stats.rows_moved += len(run.rows)
            stats.node_wall_seconds[source_id] = (
                stats.node_wall_seconds.get(source_id, 0.0)
                + run.wall_seconds)
            if run.observer is not None:
                stats.node_operators[source_id] = run.observer.records
            for target_id, batch, batch_bytes in run.deliveries:
                received.setdefault(target_id, []).append(batch)
                received_bytes[target_id] = (
                    received_bytes.get(target_id, 0) + batch_bytes)
                if profiling:
                    entry = stats.transfers.get((source_id, target_id))
                    if entry is None:
                        stats.transfers[(source_id, target_id)] = [
                            len(batch), batch_bytes]
                    else:
                        entry[0] += len(batch)
                        entry[1] += batch_bytes
            if run.sent:
                stats.network_bytes[source_id] = (
                    stats.network_bytes.get(source_id, 0) + run.sent)

        for target_id, batches in received.items():
            node = self.appliance.node_storage(target_id)
            incoming = received_bytes[target_id]
            stats.writer_bytes[target_id] = incoming
            stats.bulk_bytes[target_id] = incoming
            if len(batches) == 1:
                # Single batch (broadcast share, or a lone shuffle
                # bucket): alias it into storage; the node copies only
                # if it later mutates.
                node.adopt(destination.name, batches[0])
            else:
                for batch in batches:
                    node.insert(destination.name, batch)

        reader, network, writer, bulk = stats.component_times(
            self.truth, movement.operation.uses_hashing)
        stats.movement_seconds = max(max(reader, network),
                                     max(writer, bulk))
        stats.relational_seconds = (
            stats.relational_rows * self.truth.relational_per_row)
        stats.elapsed_seconds = (stats.movement_seconds
                                 + stats.relational_seconds)
        stats.wall_seconds = time.perf_counter() - started
        self._record_movement(stats, movement.operation)
        return stats

    def _route_batch_reference(self, operation: DmsOperation,
                               rows: List[Tuple], sizes: List[int],
                               hash_index: Optional[int],
                               node_count: int, source_id: int
                               ) -> Tuple[List[Delivery], int]:
        """Reference tuple routing: per-row dict accounting (the serial
        backend's original code path).  Semantically identical to
        :func:`route_batch_fast`; the equivalence tests pin the two
        against each other on the full TPC-H workload."""
        if not rows:
            return [], 0

        if operation is DmsOperation.SHUFFLE_MOVE:
            if hash_index is None:
                raise DmsError("shuffle move without a hash column")
            hash_indexes = [hash_index]
            buckets: Dict[int, List[Tuple]] = {}
            bucket_bytes: Dict[int, int] = {}
            for row, size in zip(rows, sizes):
                owner = node_for_row(row, hash_indexes, node_count)
                buckets.setdefault(owner, []).append(row)
                bucket_bytes[owner] = bucket_bytes.get(owner, 0) + size
            sent = 0
            deliveries: List[Delivery] = []
            for owner, batch in buckets.items():
                deliveries.append((owner, batch, bucket_bytes[owner]))
                if owner != source_id:
                    sent += bucket_bytes[owner]
            return deliveries, sent

        if operation is DmsOperation.TRIM_MOVE:
            if hash_index is None:
                raise DmsError("trim move without a hash column")
            hash_indexes = [hash_index]
            kept: List[Tuple] = []
            kept_bytes = 0
            for row, size in zip(rows, sizes):
                if node_for_row(row, hash_indexes,
                                node_count) == source_id:
                    kept.append(row)
                    kept_bytes += size
            if kept:
                return [(source_id, kept, kept_bytes)], 0
            return [], 0  # trimmed rows never leave their node

        if operation in (DmsOperation.BROADCAST_MOVE,
                         DmsOperation.CONTROL_NODE_MOVE,
                         DmsOperation.REPLICATED_BROADCAST):
            total = sum(sizes)
            deliveries = [(target_id, rows, total)
                          for target_id in range(node_count)]
            remote_targets = node_count - (
                1 if 0 <= source_id < node_count else 0)
            return deliveries, total * remote_targets

        if operation in (DmsOperation.PARTITION_MOVE,
                         DmsOperation.REMOTE_COPY):
            total = sum(sizes)
            return ([(CONTROL_NODE, rows, total)],
                    0 if source_id == CONTROL_NODE else total)

        raise DmsError(f"unknown DMS operation {operation}")

    # -- return step --------------------------------------------------------------------

    def execute_return(self, step: DsqlStep,
                       request=NULL_REQUEST) -> Tuple[List[Tuple], List[str],
                                                      StepExecutionStats]:
        """Run the final Return SQL and gather rows at the control node."""
        started = time.perf_counter()
        stats = StepExecutionStats(step.index, None)
        rows: List[Tuple] = []
        names: List[str] = []
        profiling = self.profiling
        for run in self._run_sources(step, None, request):
            source_id = run.node_id
            stats.relational_rows += run.relational_rows
            if source_id != CONTROL_NODE:
                stats.network_bytes[source_id] = run.read_bytes
            stats.node_rows[source_id] = len(run.rows)
            stats.node_wall_seconds[source_id] = (
                stats.node_wall_seconds.get(source_id, 0.0)
                + run.wall_seconds)
            if run.observer is not None:
                stats.node_operators[source_id] = run.observer.records
            if profiling:
                stats.transfers[(source_id, CONTROL_NODE)] = [
                    len(run.rows),
                    stats.network_bytes.get(source_id, 0),
                ]
            rows.extend(run.rows)
            names = run.names
        stats.movement_seconds = max(
            stats.network_bytes.values(), default=0) * self.truth.network
        stats.relational_seconds = (
            stats.relational_rows * self.truth.relational_per_row)
        stats.elapsed_seconds = (stats.movement_seconds
                                 + stats.relational_seconds)
        stats.rows_moved = len(rows)
        stats.wall_seconds = time.perf_counter() - started
        self._record_movement(stats, None)
        return rows, names, stats
