"""Logical-plan interpreter: the compute-node "DBMS instance".

Each DSQL step ships a SQL statement to the nodes; the node parses and
binds it against its local catalog and runs it against its local table
fragments.  No local optimization is done — a deliberate simplification
(the paper's cost model does not charge for local relational work either),
but joins do use hashing on equality predicates so execution stays
polynomial.

Rows travel as ``dict`` environments mapping column-variable id → value.
Two scalar backends share all operator logic:

* **compiled** (default) — every predicate / projection / aggregate
  argument is compiled once per operator into a Python closure via
  :mod:`repro.algebra.compiler`, then applied per row;
* **interpreted** (``compiled=False``) — the reference path, calling the
  recursive :func:`repro.algebra.evaluator.evaluate` per row.

The differential tests assert both backends produce identical multisets
on the full TPC-H suite.
"""

from __future__ import annotations

import operator
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra import expressions as ex
from repro.algebra.compiler import compile_expr, compile_predicate
from repro.algebra.evaluator import UnboundColumn, evaluate
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.statistics import sort_key
from repro.common.errors import ExecutionError

Env = Dict[int, object]


class InterpreterStats:
    """Row-processing counters (feed the simulated relational time).

    ``wall_seconds`` is the *measured* wall clock spent in
    :meth:`PlanInterpreter.run_query` — the per-node actual the parallel
    runtime reports alongside the simulated time.  An interpreter (and
    its stats object) is confined to the one worker thread executing
    that node's fragment, so the counters need no locks.
    """

    def __init__(self):
        self.rows_scanned = 0
        self.rows_processed = 0
        self.wall_seconds = 0.0


class PlanInterpreter:
    """Evaluates a bound logical tree against a table-name → rows map.

    ``observer`` (a :class:`repro.obs.profiler.OperatorObserver`, or any
    object with ``record(op, rows_out)``) receives each operator's output
    row count as it completes, in postorder.  The default ``None`` costs
    one identity test per *operator* — never per row — so the disabled
    path preserves the compiled backend's throughput.
    """

    def __init__(self, tables: Dict[str, List[Tuple]],
                 stats: Optional[InterpreterStats] = None,
                 compiled: bool = True,
                 observer=None):
        self.tables = {name.lower(): rows for name, rows in tables.items()}
        self.stats = stats or InterpreterStats()
        self.compiled = compiled
        self.observer = observer

    # -- scalar backends ----------------------------------------------------------

    def _scalar_fn(self, expr: ex.ScalarExpr) -> Callable[[Env], object]:
        """``env -> value`` for one expression, per the active backend."""
        if self.compiled:
            return compile_expr(expr)
        return lambda env: evaluate(expr, env)

    def _predicate_fn(self, predicate: Optional[ex.ScalarExpr]
                      ) -> Optional[Callable[[Env], bool]]:
        """``env -> bool`` (NULL counts as False); None for no predicate."""
        if predicate is None:
            return None
        if self.compiled:
            return compile_predicate(predicate)
        return lambda env: evaluate(predicate, env) is True

    # -- entry points -------------------------------------------------------------

    def run_query(self, query: Query) -> List[Tuple]:
        """Execute a bound query, honoring ORDER BY and TOP."""
        started = time.perf_counter()
        try:
            return self._run_query(query)
        finally:
            self.stats.wall_seconds += time.perf_counter() - started

    def _run_query(self, query: Query) -> List[Tuple]:
        envs = self.run(query.root)
        if query.order_by:
            for var, ascending in reversed(query.order_by):
                envs.sort(key=lambda env: sort_key(env.get(var.id)),
                          reverse=not ascending)
        if query.limit is not None:
            envs = envs[:query.limit]
        outputs = query.output_columns()
        if self.compiled:
            ids = [var.id for var in outputs]
            return [tuple(map(env.get, ids)) for env in envs]
        return [tuple(env.get(var.id) for var in outputs) for env in envs]

    def run(self, op: LogicalOp) -> List[Env]:
        envs = self._dispatch(op)
        if self.observer is not None:
            self.observer.record(op, len(envs))
        return envs

    def _dispatch(self, op: LogicalOp) -> List[Env]:
        if isinstance(op, LogicalGet):
            return self._run_get(op)
        if isinstance(op, LogicalSelect):
            return self._run_select(op)
        if isinstance(op, LogicalProject):
            return self._run_project(op)
        if isinstance(op, LogicalJoin):
            return self._run_join(op)
        if isinstance(op, LogicalGroupBy):
            return self._run_group_by(op)
        if isinstance(op, LogicalUnionAll):
            return self._run_union(op)
        raise ExecutionError(f"cannot interpret {type(op).__name__}")

    # -- operators ------------------------------------------------------------------

    def _run_get(self, op: LogicalGet) -> List[Env]:
        name = op.table.name.lower()
        if name not in self.tables:
            raise ExecutionError(f"table {op.table.name!r} not on this node")
        rows = self.tables[name]
        indexes = [op.table.column_index(var.name) for var in op.columns]
        self.stats.rows_scanned += len(rows)
        ids = [var.id for var in op.columns]
        if self.compiled:
            # C-level env construction: itemgetter + dict(zip(...)).
            if len(indexes) > 1:
                if indexes == list(range(len(indexes))):
                    # Leading columns in storage order: zip stops at the
                    # shortest sequence, no gather pass needed.
                    return [dict(zip(ids, row)) for row in rows]
                pick = operator.itemgetter(*indexes)
                return [dict(zip(ids, pick(row))) for row in rows]
            if indexes:
                var_id, index = ids[0], indexes[0]
                return [{var_id: row[index]} for row in rows]
            return [{} for _ in rows]
        return [
            {var_id: row[index] for var_id, index in zip(ids, indexes)}
            for row in rows
        ]

    def _run_select(self, op: LogicalSelect) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        if self.compiled:
            fn = compile_expr(op.predicate)
            return [env for env in envs if fn(env) is True]
        accept = self._predicate_fn(op.predicate)
        return [env for env in envs if accept(env)]

    def _run_project(self, op: LogicalProject) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        if self.compiled and all(
                isinstance(expr, ex.ColumnVar) for _, expr in op.outputs):
            # Pure-rename projection.  If it maps every column to itself
            # it only prunes columns, and envs (never mutated downstream)
            # can pass through unchanged; otherwise remap without going
            # through closures at all.
            if all(var.id == expr.id for var, expr in op.outputs):
                return envs
            pairs = [(var.id, expr.id) for var, expr in op.outputs]
            try:
                return [{out_id: env[src_id] for out_id, src_id in pairs}
                        for env in envs]
            except KeyError as exc:
                raise UnboundColumn(exc.args[0]) from None
        outputs = [(var.id, self._scalar_fn(expr))
                   for var, expr in op.outputs]
        return [
            {var_id: fn(env) for var_id, fn in outputs}
            for env in envs
        ]

    def _run_join(self, op: LogicalJoin) -> List[Env]:
        left = self.run(op.left)
        right = self.run(op.right)
        self.stats.rows_processed += len(left) + len(right)
        left_ids = frozenset(
            var.id for var in op.left.output_columns())
        right_ids = frozenset(
            var.id for var in op.right.output_columns())
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)
        accept = self._predicate_fn(op.predicate)
        if (self.compiled and pairs
                and len(pairs) == len(ex.conjuncts(op.predicate))):
            # The predicate is exactly its equi-join conjuncts: a hash
            # match already proves every conjunct true (keys are non-NULL
            # and ``==``-equal), so the residual re-check is redundant.
            accept = None
        if pairs:
            return self._hash_join(op, left, right, pairs, accept)
        return self._loop_join(op, left, right, accept)

    def _hash_join(self, op: LogicalJoin, left: List[Env],
                   right: List[Env], pairs, accept) -> List[Env]:
        left_keys = [lv.id for lv, _ in pairs]
        right_keys = [rv.id for _, rv in pairs]
        single = self.compiled and len(pairs) == 1
        table: Dict[Tuple, List[Env]] = {}
        if single:
            right_key = right_keys[0]
            lookup = table.get
            for env in right:
                value = env.get(right_key)
                if value is not None:
                    bucket = lookup(value)
                    if bucket is None:
                        table[value] = bucket = []
                    bucket.append(env)
        else:
            for env in right:
                key = tuple(env.get(k) for k in right_keys)
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(env)

        if accept is None and single:
            fast = self._hash_join_fast(op, left, table, left_keys[0])
            if fast is not None:
                return fast

        out: List[Env] = []
        for env in left:
            if single:
                value = env.get(left_keys[0])
                matches = (table.get(value, ())
                           if value is not None else ())
            else:
                key = tuple(env.get(k) for k in left_keys)
                matches = table.get(key, ()) if not any(
                    v is None for v in key) else ()
            matched = False
            for right_env in matches:
                combined = {**env, **right_env}
                if accept is None or accept(combined):
                    matched = True
                    if op.kind in (JoinKind.INNER, JoinKind.LEFT,
                                   JoinKind.CROSS):
                        out.append(combined)
                    elif op.kind is JoinKind.SEMI:
                        out.append(dict(env))
                        break
                    elif op.kind is JoinKind.ANTI:
                        break
            if not matched:
                if op.kind is JoinKind.LEFT:
                    padded = dict(env)
                    for var in op.right.output_columns():
                        padded[var.id] = None
                    out.append(padded)
                elif op.kind is JoinKind.ANTI:
                    out.append(dict(env))
        return out

    @staticmethod
    def _hash_join_fast(op: LogicalJoin, left: List[Env],
                        table: Dict, left_key: int) -> Optional[List[Env]]:
        """Residual-free single-key probes: the per-kind loops below are
        the general loop with the accept/matched bookkeeping stripped."""
        lookup = table.get
        if op.kind in (JoinKind.INNER, JoinKind.CROSS):
            out: List[Env] = []
            append = out.append
            for env in left:
                value = env.get(left_key)
                if value is None:
                    continue
                matches = lookup(value)
                if matches:
                    for right_env in matches:
                        append({**env, **right_env})
            return out
        if op.kind is JoinKind.SEMI:
            return [dict(env) for env in left
                    if (value := env.get(left_key)) is not None
                    and lookup(value)]
        if op.kind is JoinKind.ANTI:
            return [dict(env) for env in left
                    if (value := env.get(left_key)) is None
                    or not lookup(value)]
        if op.kind is JoinKind.LEFT:
            pad_ids = [var.id for var in op.right.output_columns()]
            out = []
            for env in left:
                value = env.get(left_key)
                matches = lookup(value) if value is not None else None
                if matches:
                    for right_env in matches:
                        out.append({**env, **right_env})
                else:
                    padded = dict(env)
                    for pad_id in pad_ids:
                        padded[pad_id] = None
                    out.append(padded)
            return out
        return None

    def _loop_join(self, op: LogicalJoin, left: List[Env],
                   right: List[Env], accept) -> List[Env]:
        out: List[Env] = []
        for env in left:
            matched = False
            for right_env in right:
                combined = {**env, **right_env}
                if accept is None or accept(combined):
                    matched = True
                    if op.kind in (JoinKind.INNER, JoinKind.LEFT,
                                   JoinKind.CROSS):
                        out.append(combined)
                    elif op.kind is JoinKind.SEMI:
                        out.append(dict(env))
                        break
                    elif op.kind is JoinKind.ANTI:
                        break
            if not matched:
                if op.kind is JoinKind.LEFT:
                    padded = dict(env)
                    for var in op.right.output_columns():
                        padded[var.id] = None
                    out.append(padded)
                elif op.kind is JoinKind.ANTI:
                    out.append(dict(env))
        return out

    def _run_group_by(self, op: LogicalGroupBy) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        key_ids = [k.id for k in op.keys]
        groups: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        if self.compiled and len(key_ids) == 1:
            key_id = key_ids[0]
            lookup = groups.get
            for env in envs:
                key = env.get(key_id)
                if key.__class__ is bool:
                    key = ("b", key)
                members = lookup(key)
                if members is None:
                    groups[key] = members = []
                    order.append(key)
                members.append(env)
        elif self.compiled and len(key_ids) == 2:
            first_id, second_id = key_ids
            lookup = groups.get
            for env in envs:
                first = env.get(first_id)
                if first.__class__ is bool:
                    first = ("b", first)
                second = env.get(second_id)
                if second.__class__ is bool:
                    second = ("b", second)
                key = (first, second)
                members = lookup(key)
                if members is None:
                    groups[key] = members = []
                    order.append(key)
                members.append(env)
        else:
            for env in envs:
                key = tuple(_group_key(env.get(k)) for k in key_ids)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(env)

        if not op.keys and not groups:
            # Scalar aggregation over an empty input: one row of neutral
            # aggregate values (SQL semantics).
            return [{
                var.id: (0 if agg.func == "COUNT" else None)
                for var, agg in op.aggregates
            }]

        aggregates = [
            (var.id, agg,
             self._scalar_fn(agg.arg) if agg.arg is not None else None)
            for var, agg in op.aggregates
        ]
        out: List[Env] = []
        for key in order:
            members = groups[key]
            env: Env = {
                k: members[0].get(k) for k in key_ids
            }
            for var_id, agg, arg_fn in aggregates:
                env[var_id] = _aggregate(agg, members, arg_fn)
            out.append(env)
        return out

    def _run_union(self, op: LogicalUnionAll) -> List[Env]:
        out: List[Env] = []
        for child, branch in zip(op.children, op.branch_columns):
            child_envs = self.run(child)
            for env in child_envs:
                out.append({
                    out_var.id: env.get(src_var.id)
                    for out_var, src_var in zip(op.outputs, branch)
                })
        return out


def _group_key(value):
    # bool is an int subclass; keep True distinct from 1 for grouping.
    if isinstance(value, bool):
        return ("b", value)
    return value


def _distinct(values: List) -> List:
    """First occurrence of each distinct value (``==`` semantics).

    Hash-based for hashable values; falls back to the linear scan only
    when some value is unhashable, preserving exact ``==`` dedup.
    """
    try:
        seen = set()
        unique = []
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        return unique
    except TypeError:
        unique = []
        for value in values:
            if value not in unique:
                unique.append(value)
        return unique


def _aggregate(agg: ex.AggExpr, members: Sequence[Env],
               arg_fn: Optional[Callable[[Env], object]] = None):
    if agg.func == "COUNT" and agg.arg is None:
        return len(members)
    if arg_fn is None:
        arg = agg.arg
        arg_fn = lambda env: evaluate(arg, env)  # noqa: E731
    values = [arg_fn(env) for env in members]
    values = [v for v in values if v is not None]
    if agg.distinct:
        values = _distinct(values)
    if agg.func == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.func == "SUM":
        total = values[0]
        for value in values[1:]:
            total += value
        return total
    if agg.func == "MIN":
        return min(values, key=sort_key)
    if agg.func == "MAX":
        return max(values, key=sort_key)
    raise ExecutionError(f"unsupported aggregate {agg.func}")
