"""Naive logical-plan interpreter: the compute-node "DBMS instance".

Each DSQL step ships a SQL statement to the nodes; the node parses and
binds it against its local catalog and runs it with this tuple-at-a-time
interpreter.  No local optimization is done — a deliberate simplification
(the paper's cost model does not charge for local relational work either),
but joins do use hashing on equality predicates so execution stays
polynomial.

Rows travel as ``dict`` environments mapping column-variable id → value,
which plugs directly into :mod:`repro.algebra.evaluator`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra import expressions as ex
from repro.algebra.evaluator import evaluate
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.statistics import sort_key
from repro.common.errors import ExecutionError

Env = Dict[int, object]


class InterpreterStats:
    """Row-processing counters (feed the simulated relational time)."""

    def __init__(self):
        self.rows_scanned = 0
        self.rows_processed = 0


class PlanInterpreter:
    """Evaluates a bound logical tree against a table-name → rows map."""

    def __init__(self, tables: Dict[str, List[Tuple]],
                 stats: Optional[InterpreterStats] = None):
        self.tables = {name.lower(): rows for name, rows in tables.items()}
        self.stats = stats or InterpreterStats()

    # -- entry points -------------------------------------------------------------

    def run_query(self, query: Query) -> List[Tuple]:
        """Execute a bound query, honoring ORDER BY and TOP."""
        envs = self.run(query.root)
        if query.order_by:
            for var, ascending in reversed(query.order_by):
                envs.sort(key=lambda env: sort_key(env.get(var.id)),
                          reverse=not ascending)
        if query.limit is not None:
            envs = envs[:query.limit]
        outputs = query.output_columns()
        return [tuple(env.get(var.id) for var in outputs) for env in envs]

    def run(self, op: LogicalOp) -> List[Env]:
        if isinstance(op, LogicalGet):
            return self._run_get(op)
        if isinstance(op, LogicalSelect):
            return self._run_select(op)
        if isinstance(op, LogicalProject):
            return self._run_project(op)
        if isinstance(op, LogicalJoin):
            return self._run_join(op)
        if isinstance(op, LogicalGroupBy):
            return self._run_group_by(op)
        if isinstance(op, LogicalUnionAll):
            return self._run_union(op)
        raise ExecutionError(f"cannot interpret {type(op).__name__}")

    # -- operators ------------------------------------------------------------------

    def _run_get(self, op: LogicalGet) -> List[Env]:
        name = op.table.name.lower()
        if name not in self.tables:
            raise ExecutionError(f"table {op.table.name!r} not on this node")
        rows = self.tables[name]
        indexes = [op.table.column_index(var.name) for var in op.columns]
        self.stats.rows_scanned += len(rows)
        return [
            {var.id: row[index] for var, index in zip(op.columns, indexes)}
            for row in rows
        ]

    def _run_select(self, op: LogicalSelect) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        return [env for env in envs
                if evaluate(op.predicate, env) is True]

    def _run_project(self, op: LogicalProject) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        return [
            {var.id: evaluate(expr, env) for var, expr in op.outputs}
            for env in envs
        ]

    def _run_join(self, op: LogicalJoin) -> List[Env]:
        left = self.run(op.left)
        right = self.run(op.right)
        self.stats.rows_processed += len(left) + len(right)
        left_ids = frozenset(
            var.id for var in op.left.output_columns())
        right_ids = frozenset(
            var.id for var in op.right.output_columns())
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)
        if pairs:
            return self._hash_join(op, left, right, pairs)
        return self._loop_join(op, left, right)

    def _hash_join(self, op: LogicalJoin, left: List[Env],
                   right: List[Env], pairs) -> List[Env]:
        left_keys = [lv.id for lv, _ in pairs]
        right_keys = [rv.id for _, rv in pairs]
        table: Dict[Tuple, List[Env]] = {}
        for env in right:
            key = tuple(env.get(k) for k in right_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(env)

        out: List[Env] = []
        for env in left:
            key = tuple(env.get(k) for k in left_keys)
            matches = table.get(key, ()) if not any(
                v is None for v in key) else ()
            matched = False
            for right_env in matches:
                combined = {**env, **right_env}
                if op.predicate is None or evaluate(op.predicate,
                                                    combined) is True:
                    matched = True
                    if op.kind in (JoinKind.INNER, JoinKind.LEFT,
                                   JoinKind.CROSS):
                        out.append(combined)
                    elif op.kind is JoinKind.SEMI:
                        out.append(dict(env))
                        break
                    elif op.kind is JoinKind.ANTI:
                        break
            if not matched:
                if op.kind is JoinKind.LEFT:
                    padded = dict(env)
                    for var in op.right.output_columns():
                        padded[var.id] = None
                    out.append(padded)
                elif op.kind is JoinKind.ANTI:
                    out.append(dict(env))
        return out

    def _loop_join(self, op: LogicalJoin, left: List[Env],
                   right: List[Env]) -> List[Env]:
        out: List[Env] = []
        for env in left:
            matched = False
            for right_env in right:
                combined = {**env, **right_env}
                if op.predicate is None or evaluate(op.predicate,
                                                    combined) is True:
                    matched = True
                    if op.kind in (JoinKind.INNER, JoinKind.LEFT,
                                   JoinKind.CROSS):
                        out.append(combined)
                    elif op.kind is JoinKind.SEMI:
                        out.append(dict(env))
                        break
                    elif op.kind is JoinKind.ANTI:
                        break
            if not matched:
                if op.kind is JoinKind.LEFT:
                    padded = dict(env)
                    for var in op.right.output_columns():
                        padded[var.id] = None
                    out.append(padded)
                elif op.kind is JoinKind.ANTI:
                    out.append(dict(env))
        return out

    def _run_group_by(self, op: LogicalGroupBy) -> List[Env]:
        envs = self.run(op.child)
        self.stats.rows_processed += len(envs)
        key_ids = [k.id for k in op.keys]
        groups: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        for env in envs:
            key = tuple(_group_key(env.get(k)) for k in key_ids)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(env)

        if not op.keys and not groups:
            # Scalar aggregation over an empty input: one row of neutral
            # aggregate values (SQL semantics).
            return [{
                var.id: (0 if agg.func == "COUNT" else None)
                for var, agg in op.aggregates
            }]

        out: List[Env] = []
        for key in order:
            members = groups[key]
            env: Env = {
                k: members[0].get(k) for k in key_ids
            }
            for var, agg in op.aggregates:
                env[var.id] = _aggregate(agg, members)
            out.append(env)
        return out

    def _run_union(self, op: LogicalUnionAll) -> List[Env]:
        out: List[Env] = []
        for child, branch in zip(op.children, op.branch_columns):
            child_envs = self.run(child)
            for env in child_envs:
                out.append({
                    out_var.id: env.get(src_var.id)
                    for out_var, src_var in zip(op.outputs, branch)
                })
        return out


def _group_key(value):
    # bool is an int subclass; keep True distinct from 1 for grouping.
    if isinstance(value, bool):
        return ("b", value)
    return value


def _aggregate(agg: ex.AggExpr, members: Sequence[Env]):
    if agg.func == "COUNT" and agg.arg is None:
        return len(members)
    values = [evaluate(agg.arg, env) for env in members]
    values = [v for v in values if v is not None]
    if agg.distinct:
        seen = []
        unique = []
        for value in values:
            if value not in seen:
                seen.append(value)
                unique.append(value)
        values = unique
    if agg.func == "COUNT":
        return len(values)
    if not values:
        return None
    if agg.func == "SUM":
        total = values[0]
        for value in values[1:]:
            total += value
        return total
    if agg.func == "MIN":
        return min(values, key=sort_key)
    if agg.func == "MAX":
        return max(values, key=sort_key)
    raise ExecutionError(f"unsupported aggregate {agg.func}")
