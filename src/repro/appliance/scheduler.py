"""Parallel appliance runtime: step DAG scheduling + node worker pools.

The paper's appliance is shared-nothing MPP (§2.1): every compute node
runs its DSQL fragment *concurrently*, and steps whose inputs are
independent subtrees can overlap.  This module supplies the reusable
scheduling layer the runtime builds on:

* :func:`resolve_parallel` — the parallel/serial knob with an
  environment-variable override (``REPRO_PARALLEL_RUNTIME``), so CI can
  force either path over the whole test suite;
* :class:`WorkerPool` — a lazily created thread pool with deterministic,
  input-ordered result gathering (``map_ordered``), used both for
  node-parallel fragment execution and for step scheduling;
* :class:`StepDag` — the data-dependency DAG over a DSQL plan's steps,
  derived from each step's input temp tables vs. every earlier step's
  ``destination_table``;
* :func:`run_dag` — executes a DAG on a pool, submitting each step the
  moment its inputs are materialized (no barrier between topological
  waves), so independent join subtrees — e.g. TPC-H Q5's bushy shape —
  overlap instead of running in index order.

Determinism contract: schedulers never change *what* is computed, only
*when*.  Results are always merged in node-id / step-index order, so
rows, stats and profiles are identical to the serial backend.

A note on the GIL: the simulated node work is pure Python, so on a
stock CPython build threads interleave rather than truly overlap; the
wall-clock wins of the parallel runtime come from the shuffle routing
fast path and broadcast copy elimination, while the DAG/thread layer is
the structural piece that scales on GIL-free builds (and keeps the
scheduler reusable, in the spirit of GLADE's multi-query batching).
"""

from __future__ import annotations

import os
import re
import threading
import weakref
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError

#: Environment override for the runtime default: "1"/"true" forces the
#: parallel runtime on everywhere, "0"/"false" forces the serial path.
PARALLEL_ENV_VAR = "REPRO_PARALLEL_RUNTIME"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off", "")


def resolve_parallel(explicit: Optional[bool], default: bool) -> bool:
    """Resolve a parallel/serial knob: explicit arg > env var > default."""
    if explicit is not None:
        return bool(explicit)
    value = os.environ.get(PARALLEL_ENV_VAR)
    if value is None:
        return default
    value = value.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ExecutionError(
        f"{PARALLEL_ENV_VAR}={value!r} is not a boolean "
        f"(use one of {_TRUTHY + _FALSY})")


class WorkerPool:
    """A lazily created thread pool with ordered gathering.

    The pool is not created until the first call that actually has
    concurrent work (two or more items), so serial runners and
    single-node appliances never pay for a thread.  When the pool object
    is garbage collected its executor is shut down without joining, so
    short-lived runners (tests, benchmarks) do not accumulate idle
    threads.
    """

    def __init__(self, max_workers: int, name: str = "repro-worker"):
        self.max_workers = max(1, int(max_workers))
        self._name = name
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._finalizer: Optional[weakref.finalize] = None

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._name)
                self._executor = executor
                self._finalizer = weakref.finalize(
                    self, executor.shutdown, wait=False)
            return self._executor

    def submit(self, fn: Callable, *args):
        return self._ensure().submit(fn, *args)

    def map_ordered(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item; results in **input order**.

        All submitted tasks are waited for even when one raises, so no
        task is left running against shared state; the first failure (in
        input order) is then re-raised.
        """
        items = list(items)
        if len(items) <= 1 or self.max_workers <= 1:
            return [fn(item) for item in items]
        executor = self._ensure()
        futures = [executor.submit(fn, item) for item in items]
        wait(futures)
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            if self._executor is not None:
                if self._finalizer is not None:
                    self._finalizer.detach()
                    self._finalizer = None
                self._executor.shutdown(wait=True)
                self._executor = None


class StepDag:
    """Data-dependency DAG over a DSQL plan's steps.

    Step *j* depends on step *i* iff step *i*'s destination temp table
    is referenced by step *j*'s SQL.  Temp names are generator-issued
    (``TEMP_ID_k``) and unique per plan, so a word-boundary match on the
    SQL text is exact — ``TEMP_ID_1`` does not match ``TEMP_ID_10``.
    The Return step reads the last temps, so in any connected plan it
    transitively depends on every DMS step, preserving §2.4's "Return
    runs last" semantics without an artificial barrier.
    """

    def __init__(self, plan):
        steps = plan.steps
        self.step_count = len(steps)
        producers: List[Tuple[re.Pattern, int]] = []
        dependencies: Dict[int, Tuple[int, ...]] = {}
        dependents: Dict[int, List[int]] = {i: [] for i in range(len(steps))}
        for step in steps:
            deps = sorted(
                producer for pattern, producer in producers
                if pattern.search(step.sql)
            )
            dependencies[step.index] = tuple(deps)
            for producer in deps:
                dependents[producer].append(step.index)
            if step.destination_table is not None:
                producers.append((
                    re.compile(
                        r"\b" + re.escape(step.destination_table.name)
                        + r"\b", re.IGNORECASE),
                    step.index,
                ))
        self.dependencies = dependencies
        self.dependents = {i: tuple(v) for i, v in dependents.items()}

    def waves(self) -> List[List[int]]:
        """Topological waves: wave *k* holds the steps whose longest
        dependency chain has length *k*.  (Diagnostics and tests; the
        scheduler itself is event-driven, not wave-synchronized.)"""
        level: Dict[int, int] = {}
        for index in range(self.step_count):  # indexes are topo-ordered
            deps = self.dependencies[index]
            level[index] = (max(level[d] for d in deps) + 1) if deps else 0
        waves: List[List[int]] = [[] for _ in range(max(level.values(),
                                                        default=-1) + 1)]
        for index in range(self.step_count):
            waves[level[index]].append(index)
        return waves

    @property
    def max_width(self) -> int:
        """The widest wave — the plan's exploitable step parallelism."""
        return max((len(wave) for wave in self.waves()), default=0)


def run_dag(dag: StepDag, execute: Callable[[int], object],
            pool: WorkerPool,
            on_submit: Optional[Callable[[int], None]] = None
            ) -> Dict[int, object]:
    """Run ``execute(index)`` for every step, submitting each step as
    soon as all its dependencies have completed.  Returns results keyed
    by step index.  ``on_submit`` (when given) is called with each step
    index just before it is handed to the pool — the request-lifecycle
    hook that lets a concurrent DMV reader distinguish a scheduled step
    from one still waiting on its inputs.  On failure every in-flight
    step is drained before the earliest (by step index) exception is
    re-raised, so the caller's cleanup (temp-table drops) never races
    live workers."""
    if dag.step_count == 0:
        return {}
    pending = {i: len(dag.dependencies[i]) for i in range(dag.step_count)}
    results: Dict[int, object] = {}
    failures: List[Tuple[int, BaseException]] = []
    futures = {}
    for index in sorted(i for i, n in pending.items() if n == 0):
        if on_submit is not None:
            on_submit(index)
        futures[pool.submit(execute, index)] = index
    if not futures:
        raise ExecutionError("step DAG has no ready step (dependency cycle)")
    while futures:
        done, _ = wait(futures, return_when=FIRST_COMPLETED)
        ready: List[int] = []
        for future in done:
            index = futures.pop(future)
            error = future.exception()
            if error is not None:
                failures.append((index, error))
                continue
            results[index] = future.result()
            for dependent in dag.dependents[index]:
                pending[dependent] -= 1
                if pending[dependent] == 0:
                    ready.append(dependent)
        if failures:
            wait(list(futures))
            for future, index in futures.items():
                error = future.exception()
                if error is not None:
                    failures.append((index, error))
            raise min(failures)[1]
        for index in sorted(ready):
            if on_submit is not None:
                on_submit(index)
            futures[pool.submit(execute, index)] = index
    if len(results) != dag.step_count:
        unreached = sorted(set(range(dag.step_count)) - set(results))
        raise ExecutionError(
            f"step DAG never scheduled steps {unreached} "
            f"(dependency cycle in plan)")
    return results
