"""Appliance storage: the control node, compute nodes, and table placement.

Models the PDW appliance of §2.1: N compute nodes, each hosting a DBMS
instance with its fragment of every hash-distributed table and a full copy
of every replicated table; one control node with its own (shell/staging)
storage.  Rows are plain tuples in table-column order.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.catalog.schema import (
    Catalog,
    DistributionKind,
    TableDef,
)
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats, merge_column_stats
from repro.common.errors import ExecutionError


def pdw_hash(value) -> int:
    """Deterministic, platform-stable hash used for table distribution.

    The same function is used by the storage layer, the DMS runtime and
    tests, so hash-compatibility reasoning in the optimizer matches what
    actually happens on the simulated appliance.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value) + 1
    if isinstance(value, int):
        return zlib.crc32(value.to_bytes(16, "little", signed=True))
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode())
    return zlib.crc32(str(value).encode("utf-8", "replace"))


def node_for_row(row: Tuple, hash_indexes: Sequence[int],
                 node_count: int) -> int:
    """Which compute node owns a row of a hash-distributed table."""
    if len(hash_indexes) == 1:
        return pdw_hash(row[hash_indexes[0]]) % node_count
    combined = 0
    for index in hash_indexes:
        combined = (combined * 1000003) ^ pdw_hash(row[index])
    return combined % node_count


def value_bytes(value) -> int:
    """Raw byte width of one value (the runtime's accounting unit)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4 if -2**31 <= value < 2**31 else 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return max(1, len(value))
    if hasattr(value, "toordinal"):  # date
        return 4
    return 8


def row_bytes(row: Tuple) -> int:
    return sum(value_bytes(v) for v in row)


class NodeStorage:
    """One node's table fragments: table name → list of row tuples.

    A fragment list may be **adopted** rather than inserted: broadcast
    moves deliver one shared row list to every node, and :meth:`adopt`
    aliases it in place of copying.  Adopted lists are copy-on-write —
    the first :meth:`insert` into an adopted table materializes a
    private copy — so sharing is invisible to mutating callers.
    Readers must already treat fragment lists as read-only.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.tables: Dict[str, List[Tuple]] = {}
        self._adopted: Set[str] = set()

    def create(self, name: str) -> None:
        self.tables.setdefault(name.lower(), [])

    def drop(self, name: str) -> None:
        key = name.lower()
        self.tables.pop(key, None)
        self._adopted.discard(key)

    def rows(self, name: str) -> List[Tuple]:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise ExecutionError(
                f"node {self.node_id}: table {name!r} has no storage"
            ) from None

    def insert(self, name: str, rows: Iterable[Tuple]) -> None:
        key = name.lower()
        if key in self._adopted:
            self.tables[key] = list(self.tables[key])
            self._adopted.discard(key)
        self.rows(name).extend(rows)

    def adopt(self, name: str, rows: List[Tuple]) -> None:
        """Alias ``rows`` as the table's fragment without copying.

        Only an empty fragment can adopt; a non-empty one falls back to
        a copying :meth:`insert`.  The caller must not mutate ``rows``
        afterwards (the DMS runtime delivers shared broadcast batches
        exactly once and drops its reference)."""
        key = name.lower()
        if self.rows(name):
            self.insert(name, rows)
            return
        self.tables[key] = rows
        self._adopted.add(key)


CONTROL_NODE = -1


class Appliance:
    """The simulated appliance: storage + catalog + statistics pipeline."""

    def __init__(self, node_count: int):
        if node_count < 1:
            raise ExecutionError("appliance needs at least one compute node")
        self.node_count = node_count
        self.catalog = Catalog()
        self.control = NodeStorage(CONTROL_NODE)
        self.compute = [NodeStorage(i) for i in range(node_count)]
        self._image_cache: Optional[Dict[str, List[Tuple]]] = None
        # Monotonic DDL/data generation, bumped whenever base-table
        # storage changes (temp-table churn does not count).  The plan
        # cache stamps entries with this and invalidates on mismatch.
        self.schema_version = 0
        # Guards catalog/storage DDL and the image cache: under the
        # parallel runtime, independent DSQL steps create their temp
        # tables concurrently from worker threads.
        self._lock = threading.RLock()

    # -- placement ---------------------------------------------------------------

    def _nodes_holding(self, table: TableDef) -> List[NodeStorage]:
        if table.distribution.kind is DistributionKind.CONTROL:
            return [self.control]
        return list(self.compute)

    def create_table(self, table: TableDef,
                     register: bool = True) -> None:
        """Create empty storage for a table on the right nodes."""
        with self._lock:
            if register:
                self.catalog.add_table(table)
            for node in self._nodes_holding(table):
                node.create(table.name)
            if table.is_system:
                # System views are not a schema change: refresh the
                # reference image but keep every cached plan valid.
                self._image_cache = None
            elif not table.is_temp:
                self._invalidate_image()

    def drop_table(self, name: str) -> None:
        with self._lock:
            if self.catalog.has_table(name):
                table = self.catalog.table(name)
                is_temp, is_system = table.is_temp, table.is_system
                self.catalog.drop_table(name)
            else:
                is_temp = is_system = False
            self.control.drop(name)
            for node in self.compute:
                node.drop(name)
            if is_system:
                self._image_cache = None
            elif not is_temp:
                self._invalidate_image()

    def load_rows(self, name: str, rows: Iterable[Tuple]) -> int:
        """Route rows to their nodes per the table's distribution.

        Returns the number of rows loaded and updates the table's global
        ``row_count``.
        """
        with self._lock:
            return self._load_rows_locked(name, rows)

    def _load_rows_locked(self, name: str, rows: Iterable[Tuple]) -> int:
        table = self.catalog.table(name)
        rows = list(rows)
        kind = table.distribution.kind
        if kind is DistributionKind.REPLICATED:
            for node in self.compute:
                node.insert(table.name, rows)
        elif kind is DistributionKind.CONTROL:
            self.control.insert(table.name, rows)
        else:
            hash_indexes = [
                table.column_index(col) for col in table.distribution.columns
            ]
            buckets: List[List[Tuple]] = [[] for _ in range(self.node_count)]
            for row in rows:
                buckets[node_for_row(row, hash_indexes,
                                     self.node_count)].append(row)
            for node, bucket in zip(self.compute, buckets):
                node.insert(table.name, bucket)
        table.row_count += len(rows)
        if table.is_system:
            self._image_cache = None
        elif not table.is_temp:
            self._invalidate_image()
        return len(rows)

    def replace_system_rows(self, name: str, rows: List[Tuple]) -> int:
        """Swap a system (DMV) pseudo-table's contents atomically.

        The fresh row list is built first and *aliased* onto every
        holding node (replicated system views share one list, exactly
        like a broadcast delivery), so an in-progress scan keeps the
        list it already grabbed — no torn reads — and the next scan
        sees the new snapshot.  The reference image is refreshed but
        ``schema_version`` is **not** bumped: a DMV refresh must never
        invalidate the plan cache.
        """
        shared = list(rows)
        with self._lock:
            table = self.catalog.table(name)
            if not table.is_system:
                raise ExecutionError(
                    f"table {name!r} is not a system view")
            for node in self._nodes_holding(table):
                node.drop(name)
                node.create(name)
                node.adopt(name, shared)
            table.row_count = len(shared)
            self._image_cache = None
        return len(shared)

    def node_storage(self, node_id: int) -> NodeStorage:
        if node_id == CONTROL_NODE:
            return self.control
        return self.compute[node_id]

    def table_rows_everywhere(self, name: str) -> List[Tuple]:
        """The table's full (single-system-image) contents."""
        table = self.catalog.table(name)
        kind = table.distribution.kind
        if kind is DistributionKind.REPLICATED:
            return list(self.compute[0].rows(name))
        if kind is DistributionKind.CONTROL:
            return list(self.control.rows(name))
        result: List[Tuple] = []
        for node in self.compute:
            result.extend(node.rows(name))
        return result

    # -- single-system image -------------------------------------------------------

    def _invalidate_image(self) -> None:
        self._image_cache = None
        self.schema_version += 1

    def single_system_image(self) -> Dict[str, List[Tuple]]:
        """Every non-temp table's full contents gathered into one map.

        Cached on the appliance (``run_reference`` rebuilds this for
        every correctness comparison otherwise) and invalidated whenever
        base-table storage changes — loads, creates, drops.  Callers
        must treat the returned row lists as read-only.  Thread-safe:
        concurrent first calls build the image once, under the
        appliance lock.
        """
        image = self._image_cache
        if image is None:
            with self._lock:
                if self._image_cache is None:
                    self._image_cache = {
                        table.name: self.table_rows_everywhere(table.name)
                        for table in self.catalog.tables()
                        if not table.is_temp
                    }
                image = self._image_cache
        return image

    # -- temp table lifecycle ------------------------------------------------------

    def create_temp_table(self, table: TableDef) -> None:
        self.create_table(table, register=True)
        if table.distribution.kind is not DistributionKind.CONTROL:
            # Moves may also land temp results on the control node when a
            # later step runs there; give every temp a control-side shell.
            self.control.create(table.name)

    def drop_temp_tables(self) -> None:
        for table in list(self.catalog.tables()):
            if table.is_temp:
                self.drop_table(table.name)

    # -- statistics (paper §2.2) -----------------------------------------------------

    def compute_shell_database(self, num_buckets: int = 32) -> ShellDatabase:
        """Build the shell database: local statistics per node, merged to
        global statistics — the §2.2 pipeline."""
        shell = ShellDatabase(self.catalog, self.node_count)
        for table in self.catalog.tables():
            # System views churn on every refresh; the shell's
            # synthesized defaults (from the live row_count) suffice.
            if table.is_temp or table.is_system:
                continue
            kind = table.distribution.kind
            if kind is DistributionKind.HASH:
                fragments = [node.rows(table.name) for node in self.compute]
            elif kind is DistributionKind.REPLICATED:
                fragments = [self.compute[0].rows(table.name)]
            else:
                fragments = [self.control.rows(table.name)]
            for column_index, column in enumerate(table.columns):
                locals_: List[ColumnStats] = [
                    ColumnStats.build(
                        [row[column_index] for row in fragment], num_buckets)
                    for fragment in fragments
                ]
                merged = merge_column_stats(locals_, num_buckets)
                shell.set_column_stats(table.name, column.name, merged)
        return shell
