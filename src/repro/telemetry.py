"""Pipeline telemetry: span trees, named counters, a no-op default.

Every stage of the compilation and execution pipeline accepts a
:class:`Tracer` and reports into it:

* **spans** — named, nested timing scopes (``with tracer.span("explore")``)
  recording wall-clock start and monotonic duration, with arbitrary
  key/value attributes attached as the stage learns them;
* **counters** — named accumulating values (``tracer.count("memo.groups",
  12)``) that aggregate across the whole tracer lifetime, so a session
  can total DMS bytes over many queries.

The default everywhere is :data:`NULL_TRACER`, whose ``span`` returns a
shared no-op context manager and whose ``count`` does nothing — the hot
path pays a single attribute lookup and method call when telemetry is
off.  Stages that would loop to *compute* a telemetry value guard on
``tracer.enabled`` so the disabled path does no extra work at all.

The module is intentionally dependency-free (``time`` only) so it can be
imported from every layer without cycles.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One named timing scope in the trace tree."""

    __slots__ = ("name", "attributes", "children", "started_at",
                 "duration_seconds", "_t0")

    def __init__(self, name: str):
        self.name = name
        self.attributes: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.started_at = time.time()         # wall clock, for logs
        self.duration_seconds = 0.0
        self._t0 = time.perf_counter()        # monotonic, for duration

    def set(self, name: str, value: Any) -> None:
        """Attach an attribute to the span."""
        self.attributes[name] = value

    def finish(self) -> None:
        self.duration_seconds = time.perf_counter() - self._t0

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        """The span subtree as plain data (JSON-serializable as long as
        attribute values are)."""
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def tree_string(self, indent: int = 0) -> str:
        attrs = ""
        if self.attributes:
            attrs = "  [" + ", ".join(
                f"{k}={_fmt_value(v)}"
                for k, v in sorted(self.attributes.items())) + "]"
        line = (f"{'  ' * indent}{self.name:<{max(1, 40 - 2 * indent)}} "
                f"{self.duration_seconds * 1e3:9.3f} ms{attrs}")
        return "\n".join([line] + [
            child.tree_string(indent + 1) for child in self.children
        ])


class _SpanScope:
    """Context manager pushing/popping one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._tracer._stack.pop()
        span.finish()
        del exc_type, exc, tb


class Tracer:
    """Collects a forest of spans plus a flat counter map."""

    enabled = True

    def __init__(self):
        self.roots: List[Span] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []
        # Counters are incremented from DMS node/step worker threads
        # under the parallel runtime; `dict[k] = dict.get(k) + v` is a
        # read-modify-write, so it needs the lock.  Spans stay
        # single-threaded by contract (only the coordinating thread
        # opens them).
        self._counter_lock = threading.Lock()

    # -- spans ---------------------------------------------------------------

    def span(self, name: str) -> _SpanScope:
        """Open a nested timing scope: ``with tracer.span("bind"): ...``."""
        span = Span(name)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return _SpanScope(self, span)

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    # -- counters ------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (creating it at zero).
        Thread-safe."""
        with self._counter_lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def counter_snapshot(self) -> Dict[str, float]:
        return dict(self.counters)

    # -- reporting -----------------------------------------------------------

    def reset(self) -> None:
        with self._counter_lock:
            self.roots = []
            self.counters = {}
            self._stack = []

    def render_spans(self) -> str:
        if not self.roots:
            return "(no spans recorded)"
        return "\n".join(root.tree_string() for root in self.roots)

    def render_counters(self) -> str:
        if not self.counters:
            return "(no counters recorded)"
        width = max(len(name) for name in self.counters)
        return "\n".join(
            f"{name:<{width}}  {_fmt_value(value)}"
            for name, value in sorted(self.counters.items()))

    def to_dict(self) -> Dict[str, Any]:
        """Spans and counters as plain data."""
        return {
            "spans": [root.to_dict() for root in self.roots],
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The whole trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, default=str)


class _NullSpan:
    """Shared do-nothing stand-in for both the scope and the span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        del exc_type, exc, tb

    def set(self, name: str, value: Any) -> None:
        del name, value


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The default tracer: records nothing, costs ~nothing."""

    enabled = False

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        del name
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        del name, value


NULL_TRACER = NullTracer()


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def counter_delta(before: Dict[str, float],
                  after: Dict[str, float]) -> Dict[str, float]:
    """Counters accumulated between two snapshots.

    Keys that changed appear with their delta; a counter *first touched*
    between the snapshots appears even when its accumulated change is 0.0
    (a stage that ran but counted nothing is different from a stage that
    never ran).
    """
    delta = {}
    for name, value in after.items():
        change = value - before.get(name, 0.0)
        if change or name not in before:
            delta[name] = change
    return delta
