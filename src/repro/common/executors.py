"""Executor backend names, shared by options, runners and the CLI.

Three scalar/operator backends execute DSQL step SQL on the compute
nodes:

* ``"reference"`` — tree-walking evaluator, row at a time (ground
  truth; also bypasses the step bind cache so every node re-parses);
* ``"compiled"`` — closure-compiled expressions, row at a time
  (the default);
* ``"vectorized"`` — columnar batch-at-a-time kernels
  (:mod:`repro.vector`).

The legacy ``compiled=`` boolean maps onto the first two; helpers here
keep that mapping in one place so every layer derives it identically.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ReproError

#: Valid ``executor=`` values, reference first.
EXECUTORS = ("reference", "compiled", "vectorized")


def resolve_executor(executor: Optional[str],
                     compiled: bool = True) -> str:
    """Canonical executor name from the ``executor=`` knob plus the
    legacy ``compiled=`` flag (used only when ``executor`` is None)."""
    if executor is None:
        return "compiled" if compiled else "reference"
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r} (use one of {EXECUTORS})")
    return executor
