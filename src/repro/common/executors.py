"""Executor backend names, shared by options, runners and the CLI.

Four scalar/operator backends execute DSQL step SQL on the compute
nodes:

* ``"reference"`` — tree-walking evaluator, row at a time (ground
  truth; also bypasses the step bind cache so every node re-parses);
* ``"compiled"`` — closure-compiled expressions, row at a time
  (the default);
* ``"vectorized"`` — columnar batch-at-a-time kernels over Python
  lists (:mod:`repro.vector`);
* ``"numpy"`` — dtype-aware array kernels over numpy ndarrays
  (:mod:`repro.vector.np_executor`); ufunc inner loops release the
  GIL, so the parallel node runtime gets real concurrency.  Requires
  numpy; :func:`effective_executor` degrades it to ``"vectorized"``
  (with one warning) when the import fails.

The legacy ``compiled=`` boolean maps onto the first two; helpers here
keep that mapping in one place so every layer derives it identically.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.common.errors import ReproError

#: Valid ``executor=`` values, reference first.
EXECUTORS = ("reference", "compiled", "vectorized", "numpy")


def resolve_executor(executor: Optional[str],
                     compiled: bool = True) -> str:
    """Canonical executor name from the ``executor=`` knob plus the
    legacy ``compiled=`` flag (used only when ``executor`` is None)."""
    if executor is None:
        return "compiled" if compiled else "reference"
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r} (use one of {EXECUTORS})")
    return executor


def numpy_available() -> bool:
    """Whether numpy imports in this environment.

    Deliberately *not* cached: the graceful-degradation tests install
    an import hook mid-process, and a long-lived service should notice
    an environment that changes under it no more stalely than the next
    resolution.  The import itself is cached by ``sys.modules``, so the
    common case costs one dict lookup.
    """
    try:
        import numpy  # noqa: F401
        return True
    except ImportError:
        return False


def effective_executor(executor: str) -> str:
    """The backend that will actually run: ``"numpy"`` degrades to
    ``"vectorized"`` (with a single warning) when numpy is absent;
    every other name passes through unchanged.

    Callers apply this exactly once per front door (options
    resolution, or runner construction for callers that bypass
    options), so the warning fires once per degraded run, not once
    per layer.
    """
    if executor == "numpy" and not numpy_available():
        warnings.warn(
            "executor='numpy' requested but numpy is not importable; "
            "falling back to the pure-Python 'vectorized' backend",
            RuntimeWarning, stacklevel=3)
        return "vectorized"
    return executor
