"""Exception hierarchy for the PDW reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the compilation stage that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, mirroring the diagnostics a DBMS parser would emit.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(ReproError):
    """Name resolution / semantic analysis failed (unknown table, ambiguous
    column, aggregate misuse, type mismatch...)."""


class CatalogError(ReproError):
    """Catalog manipulation failed (duplicate table, unknown column in a
    distribution key, statistics for a missing column...)."""


class OptimizerError(ReproError):
    """The serial (Cascades) optimizer could not produce a plan."""


class PdwOptimizerError(ReproError):
    """The PDW-side optimizer could not produce a distributed plan."""


class HintError(PdwOptimizerError):
    """A §3.1 distributed-execution hint is invalid: it names a table the
    shell database does not know, or a strategy other than ``'replicate'``
    / ``'shuffle'``."""


class ExecutionError(ReproError):
    """A DSQL step failed while executing on the simulated appliance."""


class DmsError(ExecutionError):
    """A data-movement operation failed at runtime."""


class ServiceError(ReproError):
    """The serving layer (:class:`repro.service.PdwService`) failed."""


class AdmissionError(ServiceError):
    """Admission control refused or abandoned a query.  Subclasses say
    why; all carry ``tenant`` and ``priority`` for accounting."""

    def __init__(self, message: str, tenant: str = "default",
                 priority: str = "normal"):
        super().__init__(message)
        self.tenant = tenant
        self.priority = priority


class QueueFullError(AdmissionError):
    """The admission queue is at capacity; the query was rejected
    immediately rather than queued."""


class AdmissionTimeoutError(AdmissionError):
    """The query waited longer than its timeout for an execution slot."""


class ServiceClosedError(AdmissionError):
    """The service is shutting down; no new queries are admitted."""
