"""SQL value types used throughout the stack.

The PDW cost model (paper §3.3.3) charges data-movement operations per *raw
byte* moved, so every type knows its on-wire width.  Values themselves are
plain Python objects (``int``, ``float``, ``str``, ``datetime.date``,
``bool``, ``None``); a :class:`SqlType` describes a column, not a value.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Optional


class TypeKind(enum.Enum):
    """The family of a SQL type."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DECIMAL = "decimal"
    DOUBLE = "double"
    VARCHAR = "varchar"
    CHAR = "char"
    DATE = "date"
    BOOLEAN = "boolean"


_FIXED_WIDTHS = {
    TypeKind.INTEGER: 4,
    TypeKind.BIGINT: 8,
    TypeKind.DECIMAL: 8,
    TypeKind.DOUBLE: 8,
    TypeKind.DATE: 4,
    TypeKind.BOOLEAN: 1,
}

_NUMERIC_KINDS = {
    TypeKind.INTEGER,
    TypeKind.BIGINT,
    TypeKind.DECIMAL,
    TypeKind.DOUBLE,
}


@dataclass(frozen=True)
class SqlType:
    """A SQL column type.

    ``length`` is the declared length for CHAR/VARCHAR, ``precision`` and
    ``scale`` the declared precision for DECIMAL.  Widths feed the cost
    model: VARCHAR contributes its declared length (the shell database also
    tracks *average* widths in statistics, which take precedence when
    available).
    """

    kind: TypeKind
    length: Optional[int] = None
    precision: Optional[int] = None
    scale: Optional[int] = None

    @property
    def width(self) -> int:
        """Raw byte width used by the DMS cost model."""
        if self.kind in _FIXED_WIDTHS:
            return _FIXED_WIDTHS[self.kind]
        return self.length if self.length is not None else 32

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    @property
    def is_string(self) -> bool:
        return self.kind in (TypeKind.VARCHAR, TypeKind.CHAR)

    def __str__(self) -> str:
        if self.kind is TypeKind.VARCHAR:
            return f"VARCHAR({self.length})"
        if self.kind is TypeKind.CHAR:
            return f"CHAR({self.length})"
        if self.kind is TypeKind.DECIMAL:
            return f"DECIMAL({self.precision}, {self.scale})"
        return self.kind.name


# Convenience constructors – these read better at call sites than the
# dataclass constructor and are the public way to spell a type.
INTEGER = SqlType(TypeKind.INTEGER)
BIGINT = SqlType(TypeKind.BIGINT)
DOUBLE = SqlType(TypeKind.DOUBLE)
DATE = SqlType(TypeKind.DATE)
BOOLEAN = SqlType(TypeKind.BOOLEAN)


def varchar(length: int) -> SqlType:
    """A VARCHAR(length) type."""
    return SqlType(TypeKind.VARCHAR, length=length)


def char(length: int) -> SqlType:
    """A CHAR(length) type."""
    return SqlType(TypeKind.CHAR, length=length)


def decimal(precision: int = 15, scale: int = 2) -> SqlType:
    """A DECIMAL(precision, scale) type (values are Python floats)."""
    return SqlType(TypeKind.DECIMAL, precision=precision, scale=scale)


def value_matches_type(value: object, sql_type: SqlType) -> bool:
    """True when a Python value is storable in a column of ``sql_type``.

    ``None`` (SQL NULL) is storable in any column.
    """
    if value is None:
        return True
    kind = sql_type.kind
    if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
        return isinstance(value, int) and not isinstance(value, bool)
    if kind in (TypeKind.DECIMAL, TypeKind.DOUBLE):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if kind in (TypeKind.VARCHAR, TypeKind.CHAR):
        return isinstance(value, str)
    if kind is TypeKind.DATE:
        return isinstance(value, datetime.date)
    if kind is TypeKind.BOOLEAN:
        return isinstance(value, bool)
    return False


def common_super_type(left: SqlType, right: SqlType) -> SqlType:
    """The result type of an arithmetic/comparison combination.

    Numeric types widen INTEGER -> BIGINT -> DECIMAL -> DOUBLE; strings widen
    to the longer VARCHAR; anything else must match on kind.
    """
    if left.kind == right.kind:
        if left.is_string:
            return varchar(max(left.width, right.width))
        return left
    order = [TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DECIMAL, TypeKind.DOUBLE]
    if left.kind in order and right.kind in order:
        widest = max(order.index(left.kind), order.index(right.kind))
        return SqlType(order[widest], precision=15, scale=2)
    if left.is_string and right.is_string:
        return varchar(max(left.width, right.width))
    raise TypeError(f"no common type for {left} and {right}")
