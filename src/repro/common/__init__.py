"""Shared value types and errors."""

from repro.common import errors, types

__all__ = ["errors", "types"]
