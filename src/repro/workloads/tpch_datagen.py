"""Deterministic TPC-H data generator (dbgen stand-in).

Generates value distributions faithful to the specification where the
reproduced queries care (dates in 1992-1998, ``forest%`` part names with
the right frequency, MAIL/SHIP ship modes, 5-PLACED priorities, skew-free
uniform foreign keys), scaled down to laptop sizes.  Everything is driven
by one seed, so appliances are reproducible across runs.
"""

from __future__ import annotations

import datetime
import random
from typing import Dict, List, Tuple

from repro.appliance.storage import Appliance
from repro.catalog.shell_db import ShellDatabase
from repro.workloads.tpch_schema import scaled_row_count, tpch_tables

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
               "5-LOW"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                  "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
               "LG BOX", "JUMBO PKG", "WRAP CASE"]
_TYPES = ["STANDARD ANODIZED", "SMALL PLATED", "PROMO BURNISHED",
          "ECONOMY BRUSHED", "LARGE POLISHED", "MEDIUM ANODIZED"]
_TYPE_MATERIAL = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black", "blanched", "blue", "blush", "brown", "burlywood",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "indian", "ivory", "khaki",
    "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
    "magenta", "maroon", "medium", "metallic", "midnight", "mint",
    "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke",
    "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
    "violet", "wheat", "white", "yellow",
]

_START_DATE = datetime.date(1992, 1, 1)
_ORDER_DATE_RANGE = 21_92  # days: orders span 1992-01-01 .. 1998-08-02


def _random_date(rng: random.Random) -> datetime.date:
    return _START_DATE + datetime.timedelta(days=rng.randint(0, 2405))


class TpchGenerator:
    """Generates scaled TPC-H rows, table by table."""

    def __init__(self, scale: float = 0.01, seed: int = 20120520):
        self.scale = scale
        self.seed = seed
        self.counts: Dict[str, int] = {
            name: scaled_row_count(name, scale)
            for name in ("region", "nation", "supplier", "customer",
                         "orders", "part", "partsupp")
        }
        # lineitem count is derived: 1-7 lines per order (avg ~4).

    # -- per-table generators -----------------------------------------------------

    def region_rows(self) -> List[Tuple]:
        return [(i, _REGIONS[i]) for i in range(5)]

    def nation_rows(self) -> List[Tuple]:
        return [
            (i, name, region) for i, (name, region) in enumerate(_NATIONS)
        ]

    def supplier_rows(self) -> List[Tuple]:
        rng = random.Random(self.seed + 1)
        rows = []
        for key in range(1, self.counts["supplier"] + 1):
            rows.append((
                key,
                f"Supplier#{key:09d}",
                f"addr-{rng.randint(1, 10**6)}",
                rng.randrange(25),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
            ))
        return rows

    def customer_rows(self) -> List[Tuple]:
        rng = random.Random(self.seed + 2)
        rows = []
        for key in range(1, self.counts["customer"] + 1):
            rows.append((
                key,
                f"Customer#{key:09d}",
                f"addr-{rng.randint(1, 10**6)}",
                rng.randrange(25),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(_SEGMENTS),
            ))
        return rows

    def part_rows(self) -> List[Tuple]:
        rng = random.Random(self.seed + 3)
        rows = []
        for key in range(1, self.counts["part"] + 1):
            words = rng.sample(_NAME_WORDS, 5)
            rows.append((
                key,
                " ".join(words),
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                f"{rng.choice(_TYPES)} {rng.choice(_TYPE_MATERIAL)}",
                rng.randint(1, 50),
                rng.choice(_CONTAINERS),
                round(900 + key / 10.0 % 200 + rng.uniform(0, 100), 2),
            ))
        return rows

    def partsupp_rows(self) -> List[Tuple]:
        rng = random.Random(self.seed + 4)
        suppliers = self.counts["supplier"]
        rows = []
        for part_key in range(1, self.counts["part"] + 1):
            for replica in range(4):
                supp_key = ((part_key + replica * (suppliers // 4 + 1))
                            % suppliers) + 1
                rows.append((
                    part_key,
                    supp_key,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                ))
        return rows

    def orders_rows(self) -> List[Tuple]:
        rng = random.Random(self.seed + 5)
        customers = self.counts["customer"]
        rows = []
        for key in range(1, self.counts["orders"] + 1):
            order_date = _random_date(rng)
            rows.append((
                key,
                rng.randint(1, customers),
                rng.choice("OFP"),
                round(rng.uniform(1000.0, 450000.0), 2),
                order_date,
                rng.choice(_PRIORITIES),
                f"Clerk#{rng.randint(1, 1000):09d}",
                0,
            ))
        return rows

    def lineitem_rows(self, orders: List[Tuple]) -> List[Tuple]:
        rng = random.Random(self.seed + 6)
        parts = self.counts["part"]
        suppliers = self.counts["supplier"]
        rows = []
        for order in orders:
            order_key = order[0]
            order_date = order[4]
            for line_number in range(1, rng.randint(1, 7) + 1):
                part_key = rng.randint(1, parts)
                # One of the part's four suppliers, mirroring partsupp.
                replica = rng.randrange(4)
                supp_key = ((part_key + replica * (suppliers // 4 + 1))
                            % suppliers) + 1
                quantity = rng.randint(1, 50)
                extended = round(quantity * rng.uniform(900.0, 1100.0), 2)
                ship_date = order_date + datetime.timedelta(
                    days=rng.randint(1, 121))
                commit_date = order_date + datetime.timedelta(
                    days=rng.randint(30, 90))
                receipt_date = ship_date + datetime.timedelta(
                    days=rng.randint(1, 30))
                return_flag = (
                    rng.choice("RA") if receipt_date
                    <= datetime.date(1995, 6, 17) else "N")
                line_status = ("O" if ship_date
                               > datetime.date(1995, 6, 17) else "F")
                rows.append((
                    order_key,
                    part_key,
                    supp_key,
                    line_number,
                    float(quantity),
                    extended,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    return_flag,
                    line_status,
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(_SHIP_INSTRUCT),
                    rng.choice(_SHIP_MODES),
                ))
        return rows


def build_tpch_appliance(scale: float = 0.01, node_count: int = 8,
                         seed: int = 20120520,
                         stats_buckets: int = 32
                         ) -> Tuple[Appliance, ShellDatabase]:
    """Create a loaded appliance and its derived shell database.

    This is the repo's standard fixture: data is generated, distributed
    per the paper's placement design, per-node statistics are computed and
    merged into the shell database (§2.2).
    """
    generator = TpchGenerator(scale, seed)
    appliance = Appliance(node_count)
    for table in tpch_tables():
        appliance.create_table(table)
    appliance.load_rows("region", generator.region_rows())
    appliance.load_rows("nation", generator.nation_rows())
    appliance.load_rows("supplier", generator.supplier_rows())
    appliance.load_rows("customer", generator.customer_rows())
    appliance.load_rows("part", generator.part_rows())
    appliance.load_rows("partsupp", generator.partsupp_rows())
    orders = generator.orders_rows()
    appliance.load_rows("orders", orders)
    appliance.load_rows("lineitem", generator.lineitem_rows(orders))
    shell = appliance.compute_shell_database(stats_buckets)
    return appliance, shell
