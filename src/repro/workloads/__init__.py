"""Workloads: the TPC-H schema, generator and query set used throughout
the paper's examples and this repo's benchmarks."""

from repro.workloads.tpch_datagen import TpchGenerator, build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names
from repro.workloads.tpch_schema import (
    SF1_ROW_COUNTS,
    scaled_row_count,
    tpch_tables,
)

__all__ = [
    "TpchGenerator",
    "build_tpch_appliance",
    "TPCH_QUERIES",
    "query_names",
    "SF1_ROW_COUNTS",
    "scaled_row_count",
    "tpch_tables",
]
