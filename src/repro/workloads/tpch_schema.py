"""TPC-H schema with the paper's distribution design.

The paper's examples fix the placement (§2.4, §2.5, §4 / Figure 7):

* ``customer``  hash-partitioned on ``c_custkey``
* ``orders``    hash-partitioned on ``o_orderkey``
* ``lineitem``  hash-partitioned on ``l_orderkey``  (collocated with orders)
* ``part``      hash-partitioned on ``p_partkey``
* ``partsupp``  hash-partitioned on ``ps_partkey``  (collocated with part)
* ``supplier``  replicated (Figure 7 joins against ``supplier_repl``)
* ``nation`` / ``region`` replicated dimension tables

Comment columns are omitted — none of the reproduced queries touch them
and they only inflate simulated byte counts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.schema import (
    Column,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.types import DATE, INTEGER, char, decimal, varchar


def tpch_tables() -> List[TableDef]:
    """Fresh table definitions (row counts start at zero)."""
    return [
        TableDef(
            "region",
            [
                Column("r_regionkey", INTEGER, nullable=False),
                Column("r_name", char(25)),
            ],
            REPLICATED,
            primary_key=("r_regionkey",),
        ),
        TableDef(
            "nation",
            [
                Column("n_nationkey", INTEGER, nullable=False),
                Column("n_name", char(25)),
                Column("n_regionkey", INTEGER),
            ],
            REPLICATED,
            primary_key=("n_nationkey",),
        ),
        TableDef(
            "supplier",
            [
                Column("s_suppkey", INTEGER, nullable=False),
                Column("s_name", char(25)),
                Column("s_address", varchar(40)),
                Column("s_nationkey", INTEGER),
                Column("s_phone", char(15)),
                Column("s_acctbal", decimal(15, 2)),
            ],
            REPLICATED,
            primary_key=("s_suppkey",),
        ),
        TableDef(
            "customer",
            [
                Column("c_custkey", INTEGER, nullable=False),
                Column("c_name", varchar(25)),
                Column("c_address", varchar(40)),
                Column("c_nationkey", INTEGER),
                Column("c_phone", char(15)),
                Column("c_acctbal", decimal(15, 2)),
                Column("c_mktsegment", char(10)),
            ],
            hash_distributed("c_custkey"),
            primary_key=("c_custkey",),
        ),
        TableDef(
            "orders",
            [
                Column("o_orderkey", INTEGER, nullable=False),
                Column("o_custkey", INTEGER),
                Column("o_orderstatus", char(1)),
                Column("o_totalprice", decimal(15, 2)),
                Column("o_orderdate", DATE),
                Column("o_orderpriority", char(15)),
                Column("o_clerk", char(15)),
                Column("o_shippriority", INTEGER),
            ],
            hash_distributed("o_orderkey"),
            primary_key=("o_orderkey",),
        ),
        TableDef(
            "lineitem",
            [
                Column("l_orderkey", INTEGER, nullable=False),
                Column("l_partkey", INTEGER),
                Column("l_suppkey", INTEGER),
                Column("l_linenumber", INTEGER),
                Column("l_quantity", decimal(15, 2)),
                Column("l_extendedprice", decimal(15, 2)),
                Column("l_discount", decimal(15, 2)),
                Column("l_tax", decimal(15, 2)),
                Column("l_returnflag", char(1)),
                Column("l_linestatus", char(1)),
                Column("l_shipdate", DATE),
                Column("l_commitdate", DATE),
                Column("l_receiptdate", DATE),
                Column("l_shipinstruct", char(25)),
                Column("l_shipmode", char(10)),
            ],
            hash_distributed("l_orderkey"),
            primary_key=("l_orderkey", "l_linenumber"),
        ),
        TableDef(
            "part",
            [
                Column("p_partkey", INTEGER, nullable=False),
                Column("p_name", varchar(55)),
                Column("p_mfgr", char(25)),
                Column("p_brand", char(10)),
                Column("p_type", varchar(25)),
                Column("p_size", INTEGER),
                Column("p_container", char(10)),
                Column("p_retailprice", decimal(15, 2)),
            ],
            hash_distributed("p_partkey"),
            primary_key=("p_partkey",),
        ),
        TableDef(
            "partsupp",
            [
                Column("ps_partkey", INTEGER, nullable=False),
                Column("ps_suppkey", INTEGER, nullable=False),
                Column("ps_availqty", INTEGER),
                Column("ps_supplycost", decimal(15, 2)),
            ],
            hash_distributed("ps_partkey"),
            primary_key=("ps_partkey", "ps_suppkey"),
        ),
    ]


# Base cardinalities at scale factor 1.0 (the TPC-H specification).
SF1_ROW_COUNTS: Dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # ~4 per order
    "part": 200_000,
    "partsupp": 800_000,    # 4 per part
}


def scaled_row_count(table: str, scale: float) -> int:
    """Row count at a given scale factor (fixed tiny dimension tables)."""
    base = SF1_ROW_COUNTS[table]
    if table in ("region", "nation"):
        return base
    return max(1, int(base * scale))
