"""TPC-H queries in the reproduction's SQL dialect.

Interval arithmetic is pre-computed into literals (the dialect has DATE
literals and DATEADD but no INTERVAL), otherwise the queries are the
standard ones.  ``Q20`` is the paper's §4 / Figure 7 walkthrough query,
kept verbatim in structure.
"""

from __future__ import annotations

from typing import Dict, List

Q1 = """
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q3 = """
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

Q4 = """
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-10-01'
  AND EXISTS (
      SELECT 1 FROM lineitem
      WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate
  )
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

Q5 = """
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC
"""

Q6 = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24
"""

Q10 = """
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20
"""

Q12 = """
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

Q14 = """
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-10-01'
"""

Q18 = """
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS total_qty
FROM customer, orders, lineitem
WHERE o_orderkey IN (
      SELECT l_orderkey FROM lineitem
      GROUP BY l_orderkey
      HAVING SUM(l_quantity) > 212
  )
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

Q20 = """
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
      SELECT ps_suppkey FROM partsupp
      WHERE ps_partkey IN (
            SELECT p_partkey FROM part WHERE p_name LIKE 'forest%'
        )
        AND ps_availqty > (
            SELECT 0.5 * SUM(l_quantity) FROM lineitem
            WHERE l_partkey = ps_partkey
              AND l_suppkey = ps_suppkey
              AND l_shipdate >= DATE '1994-01-01'
              AND l_shipdate < DATEADD(year, 1, DATE '1994-01-01')
        )
  )
  AND s_nationkey = n_nationkey
  AND n_name = 'CANADA'
ORDER BY s_name
"""

Q13 = """
SELECT c_count, COUNT(*) AS custdist
FROM (
    SELECT c_custkey AS the_custkey, COUNT(o_orderkey) AS c_count
    FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey
    GROUP BY c_custkey
) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""
# Q13 note: the spec's "o_comment NOT LIKE '%special%requests%'" filter is
# dropped — comment columns are not generated (DESIGN.md substitution).

Q16 = """
SELECT p_brand, p_type, p_size,
       COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM ANODIZED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (
      SELECT s_suppkey FROM supplier WHERE s_acctbal < 0
  )
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
LIMIT 40
"""
# Q16 note: the spec excludes suppliers with complaint comments; without
# comment columns we exclude negative-balance suppliers instead (same
# NOT-IN-subquery shape).

Q17 = """
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < (
      SELECT 0.2 * AVG(l_quantity) FROM lineitem
      WHERE l_partkey = p_partkey
  )
"""

Q19 = """
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND l_shipmode IN ('AIR', 'REG AIR')
  AND (
        (p_brand = 'Brand#12' AND p_container IN ('SM CASE', 'SM BOX')
         AND l_quantity >= 1 AND l_quantity <= 11 AND p_size BETWEEN 1 AND 5)
     OR (p_brand = 'Brand#23' AND p_container IN ('MED BAG', 'MED BOX')
         AND l_quantity >= 10 AND l_quantity <= 20 AND p_size BETWEEN 1 AND 10)
     OR (p_brand = 'Brand#34' AND p_container IN ('LG CASE', 'LG BOX')
         AND l_quantity >= 20 AND l_quantity <= 30 AND p_size BETWEEN 1 AND 15)
  )
"""

Q22 = """
SELECT cntrycode, COUNT(*) AS numcust, SUM(acctbal) AS totacctbal
FROM (
    SELECT SUBSTRING(c_phone, 1, 2) AS cntrycode, c_acctbal AS acctbal,
           c_custkey AS k
    FROM customer
    WHERE SUBSTRING(c_phone, 1, 2) IN ('13', '31', '23', '29', '30')
      AND c_acctbal > (
          SELECT AVG(c_acctbal) FROM customer WHERE c_acctbal > 0.00
      )
) AS custsale
WHERE k NOT IN (SELECT o_custkey FROM orders)
GROUP BY cntrycode
ORDER BY cntrycode
"""

# The three-way join of §2.5 ("why parallelizing the best serial plan is
# not enough"): customer ⋈ orders ⋈ lineitem on custkey and orderkey.
SEC25_JOIN = """
SELECT c_custkey, o_orderkey, l_quantity
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND o_orderkey = l_orderkey
"""

# §2.4's DSQL plan example.
SEC24_JOIN = """
SELECT c_custkey, o_orderdate
FROM orders, customer
WHERE o_custkey = c_custkey
  AND o_totalprice > 100
"""

TPCH_QUERIES: Dict[str, str] = {
    "Q1": Q1,
    "Q3": Q3,
    "Q4": Q4,
    "Q5": Q5,
    "Q6": Q6,
    "Q10": Q10,
    "Q12": Q12,
    "Q13": Q13,
    "Q14": Q14,
    "Q16": Q16,
    "Q17": Q17,
    "Q18": Q18,
    "Q19": Q19,
    "Q20": Q20,
    "Q22": Q22,
}


def query_names() -> List[str]:
    return list(TPCH_QUERIES)
