"""repro — reproduction of "Query Optimization in Microsoft SQL Server
PDW" (SIGMOD 2012).

The package implements the full PDW compilation and execution pipeline on
a simulated appliance:

* :mod:`repro.sql` — SQL frontend (lexer, AST, parser);
* :mod:`repro.catalog` — schema, distribution metadata, statistics and the
  shell database (§2.2);
* :mod:`repro.algebra` — bound scalar expressions, logical/physical
  operators, distribution properties;
* :mod:`repro.optimizer` — the "SQL Server" side: binder, normalization,
  MEMO, exploration, implementation, cardinality/cost estimation and the
  MEMO⇄XML interface (§2.5, §3.1);
* :mod:`repro.pdw` — the paper's contribution: the bottom-up PDW optimizer
  with interesting distribution properties, DMS enforcement and the
  DMS-only cost model (§3.2, §3.3), plus DSQL generation (§3.4);
* :mod:`repro.appliance` — the simulated appliance: distributed storage,
  node-local SQL execution, the DMS runtime with byte accounting, the
  parallel runtime (step-DAG scheduling + node worker pools), and the
  λ calibration harness (§3.3.3);
* :mod:`repro.workloads` — TPC-H schema/generator/queries with the
  paper's placement design.

Quickstart — the recommended front door is :class:`repro.session.PdwSession`,
which owns the appliance, shell database, engine and telemetry tracer::

    from repro import PdwSession

    session = PdwSession(scale=0.01, node_count=8)
    print(session.explain("SELECT COUNT(*) AS n FROM lineitem",
                          analyze=True))   # EXPLAIN ANALYZE table
    result = session.run("SELECT n_name FROM nation ORDER BY n_name")
    print(result.rows, result.dms_seconds)
    print(session.trace_report())          # nested span tree

**Which API do I want?**  Use :class:`PdwSession` when you want the whole
pipeline with sane defaults and telemetry.  Drop to the low-level pieces —
:class:`PdwEngine` (compile SQL against a shell database you built
yourself) and :class:`DsqlRunner` (execute a DSQL plan on an appliance) —
when you need custom schemas, configs, or to hold the intermediate
artifacts::

    from repro import PdwEngine, DsqlRunner, build_tpch_appliance

    appliance, shell = build_tpch_appliance(scale=0.01, node_count=8)
    engine = PdwEngine(shell)
    compiled = engine.compile("SELECT COUNT(*) AS n FROM lineitem")
    print(compiled.explain())
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    print(result.rows)
"""

from repro.appliance.calibration import CalibrationResult, Calibrator
from repro.appliance.dms_runtime import DmsRuntime, GroundTruthConstants
from repro.appliance.runner import (
    DsqlRunner,
    ExecutionTiming,
    QueryResult,
    run_reference,
)
from repro.appliance.scheduler import (
    PARALLEL_ENV_VAR,
    StepDag,
    WorkerPool,
    resolve_parallel,
)
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Catalog,
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.opt_trace import (
    NULL_OPT_TRACE,
    OptimizerTrace,
    OptimizerTraceSummary,
)
from repro.obs.profiler import (
    QErrorSummary,
    QueryProfile,
    SkewStats,
    build_query_profile,
    q_error,
    skew_stats,
)
from repro.obs.requests import (
    NULL_REQUESTS,
    RequestRecord,
    RequestRegistry,
)
from repro.obs.system_views import (
    SYSTEM_VIEW_NAMES,
    refresh_system_views,
    register_system_views,
)
from repro.optimizer.search import (
    OptimizationResult,
    OptimizerConfig,
    SerialOptimizer,
)
from repro.pdw.advisor import (
    AdvisorResult,
    PartitioningAdvisor,
    WorkloadQuery,
)
from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.cost_model import CostConstants, DmsCostModel
from repro.pdw.engine import CompiledQuery, PdwEngine
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwPlan
from repro.pdw.why import PlanChoice, explain_plan_choice, render_plan_choice
from repro.service import (
    AdmissionController,
    ExecutionOptions,
    PdwService,
    PlanCache,
    parameterize,
)
from repro.session import PdwSession, StepAnalysis
from repro.telemetry import NULL_TRACER, Span, Tracer
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdvisorResult",
    "PartitioningAdvisor",
    "WorkloadQuery",
    "Appliance",
    "CalibrationResult",
    "Calibrator",
    "Catalog",
    "Column",
    "CompiledQuery",
    "CostConstants",
    "DmsCostModel",
    "DmsRuntime",
    "DsqlRunner",
    "ExecutionOptions",
    "ExecutionTiming",
    "GroundTruthConstants",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OPT_TRACE",
    "NULL_REQUESTS",
    "NULL_TRACER",
    "RequestRecord",
    "RequestRegistry",
    "SYSTEM_VIEW_NAMES",
    "refresh_system_views",
    "register_system_views",
    "OptimizerTrace",
    "OptimizerTraceSummary",
    "PlanChoice",
    "explain_plan_choice",
    "render_plan_choice",
    "ON_CONTROL",
    "QErrorSummary",
    "QueryProfile",
    "SkewStats",
    "build_query_profile",
    "q_error",
    "skew_stats",
    "OptimizationResult",
    "OptimizerConfig",
    "PARALLEL_ENV_VAR",
    "StepDag",
    "WorkerPool",
    "resolve_parallel",
    "PdwConfig",
    "PdwEngine",
    "PdwOptimizer",
    "PdwPlan",
    "PdwService",
    "PdwSession",
    "PlanCache",
    "parameterize",
    "QueryResult",
    "REPLICATED",
    "SerialOptimizer",
    "ShellDatabase",
    "Span",
    "StepAnalysis",
    "TableDef",
    "Tracer",
    "TPCH_QUERIES",
    "build_tpch_appliance",
    "hash_distributed",
    "parallelize_serial_plan",
    "run_reference",
]
