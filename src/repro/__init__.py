"""repro — reproduction of "Query Optimization in Microsoft SQL Server
PDW" (SIGMOD 2012).

The package implements the full PDW compilation and execution pipeline on
a simulated appliance:

* :mod:`repro.sql` — SQL frontend (lexer, AST, parser);
* :mod:`repro.catalog` — schema, distribution metadata, statistics and the
  shell database (§2.2);
* :mod:`repro.algebra` — bound scalar expressions, logical/physical
  operators, distribution properties;
* :mod:`repro.optimizer` — the "SQL Server" side: binder, normalization,
  MEMO, exploration, implementation, cardinality/cost estimation and the
  MEMO⇄XML interface (§2.5, §3.1);
* :mod:`repro.pdw` — the paper's contribution: the bottom-up PDW optimizer
  with interesting distribution properties, DMS enforcement and the
  DMS-only cost model (§3.2, §3.3), plus DSQL generation (§3.4);
* :mod:`repro.appliance` — the simulated appliance: distributed storage,
  node-local SQL execution, the DMS runtime with byte accounting, and the
  λ calibration harness (§3.3.3);
* :mod:`repro.workloads` — TPC-H schema/generator/queries with the
  paper's placement design.

Quickstart::

    from repro import PdwEngine, DsqlRunner, build_tpch_appliance

    appliance, shell = build_tpch_appliance(scale=0.01, node_count=8)
    engine = PdwEngine(shell)
    compiled = engine.compile("SELECT COUNT(*) AS n FROM lineitem")
    print(compiled.explain())
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    print(result.rows)
"""

from repro.appliance.calibration import CalibrationResult, Calibrator
from repro.appliance.dms_runtime import DmsRuntime, GroundTruthConstants
from repro.appliance.runner import DsqlRunner, QueryResult, run_reference
from repro.appliance.storage import Appliance
from repro.catalog.schema import (
    Catalog,
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.optimizer.search import (
    OptimizationResult,
    OptimizerConfig,
    SerialOptimizer,
)
from repro.pdw.advisor import (
    AdvisorResult,
    PartitioningAdvisor,
    WorkloadQuery,
)
from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.cost_model import CostConstants, DmsCostModel
from repro.pdw.engine import CompiledQuery, PdwEngine
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwPlan
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES

__version__ = "1.0.0"

__all__ = [
    "AdvisorResult",
    "PartitioningAdvisor",
    "WorkloadQuery",
    "Appliance",
    "CalibrationResult",
    "Calibrator",
    "Catalog",
    "Column",
    "CompiledQuery",
    "CostConstants",
    "DmsCostModel",
    "DmsRuntime",
    "DsqlRunner",
    "GroundTruthConstants",
    "ON_CONTROL",
    "OptimizationResult",
    "OptimizerConfig",
    "PdwConfig",
    "PdwEngine",
    "PdwOptimizer",
    "PdwPlan",
    "QueryResult",
    "REPLICATED",
    "SerialOptimizer",
    "ShellDatabase",
    "TableDef",
    "TPCH_QUERIES",
    "build_tpch_appliance",
    "hash_distributed",
    "parallelize_serial_plan",
    "run_reference",
]
