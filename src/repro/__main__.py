"""Command-line interface: compile and run queries against a generated
TPC-H appliance.

    python -m repro explain "SELECT COUNT(*) AS n FROM lineitem"
    python -m repro explain --analyze "SELECT COUNT(*) AS n FROM lineitem"
    python -m repro run "SELECT n_name FROM nation ORDER BY n_name LIMIT 5"
    python -m repro memo "SELECT c_name FROM customer WHERE c_custkey < 10"
    python -m repro stats "SELECT COUNT(*) AS n FROM lineitem"
    python -m repro profile "SELECT COUNT(*) AS n FROM lineitem, orders \
WHERE l_orderkey = o_orderkey"
    python -m repro why "SELECT COUNT(*) AS n FROM lineitem, orders \
WHERE l_orderkey = o_orderkey"
    python -m repro calibrate --nodes 8
    python -m repro serve --clients 4 --queries 8
    python -m repro bench --clients 8 --queries 12
    python -m repro requests --clients 4 --queries 8
    python -m repro querystore --clients 4 --queries 8 \
--hint customer=shuffle --regressions

``serve`` runs the multi-user serving layer (:mod:`repro.service`) under
a parameterized TPC-H traffic mix — concurrent clients, parameterized
plan cache, admission control — and prints latency percentiles,
throughput and cache statistics; ``serve --smoke`` is the CI guard
(requires plan-cache hits and a reported p99; fails if any internal
caller trips the deprecated-option shims).  ``bench`` is the same flow
sized as a throughput benchmark, optionally appending its report to a
results file.

``requests`` drives the same traffic mix and then *dogfoods* the
``sys.dm_pdw_*`` system views: the per-status request counts and the
plan-cache contents are answered by SQL queries through the normal
parse → optimize → execute path, followed by the flight recorder's
request and step tables.  ``--slow`` restricts to requests over the
slow-query threshold; ``--json`` prints the flight-recorder events as a
JSON array; ``--jsonl PATH`` writes the schema-validated event log;
``--prometheus PATH`` writes the ``pdw_request_*`` series alongside the
service metrics.

``querystore`` drives the same mix and then reads the Query Store — the
persistent per-shape plan + runtime-stats history — back through the
``sys.query_store_*`` views over normal SQL, prints the plan-history
tables and the plan-regression verdicts, and exports the store as
schema-validated ``query_store_flush`` JSONL events, Prometheus
``pdw_query_store_*`` series, or a reloadable ``--save`` file.
``--hint TABLE=STRATEGY`` re-runs the mix templates touching that table
with a §3.1 hint after the plain pass, forcing an alternate plan under
the same shape so ``--regressions`` has something to flag.

``profile`` executes the query with per-node / per-operator profiling on
and renders skew + Q-error tables; ``--json`` prints the structured
profile document instead, ``--jsonl PATH`` writes the validated event
log, and ``--prometheus PATH`` dumps the session metrics registry in
Prometheus text format.

``why`` compiles with the optimizer search-space recorder on and answers
"why did the optimizer pick this plan?": the winning distributed plan is
diffed against the §2.5 parallelized-serial baseline (per-subtree DMS
cost deltas), followed by per-group enumeration statistics, the top-k
costliest considered-but-rejected movements, and prune effectiveness per
interesting-property key.  ``--jsonl`` / ``--prometheus`` export the
same numbers as validated events and ``pdw_optimizer_*`` series.

Options ``--scale`` and ``--nodes`` size the appliance (defaults: scale
0.002, 8 nodes).  ``--trace`` appends the nested telemetry span tree
(parse → serial → XML → PDW → DSQL → execute) to any command's output.
``--executor {reference,compiled,vectorized,numpy}`` picks the
execution backend by name — ``vectorized`` runs DSQL steps
batch-at-a-time over columnar fragments (:mod:`repro.vector`) and
``numpy`` runs the same plans over typed ndarrays (falling back to
``vectorized`` when numpy is absent); ``--no-compiled-exec`` is the
legacy spelling of ``--executor reference``.
``--serial-runtime`` executes DSQL plans with the §2.4 serial reference
walk (one step at a time, one node at a time) instead of the parallel
runtime (step DAG + node thread pool + fast-path routing); both produce
identical rows and stats.  The appliance is regenerated
deterministically on every invocation, so results are reproducible.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import List, Optional

from repro import (
    Calibrator,
    ExecutionOptions,
    GroundTruthConstants,
    PdwSession,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PDW query optimizer reproduction (SIGMOD 2012)")
    parser.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor (default 0.002)")
    parser.add_argument("--nodes", type=int, default=8,
                        help="compute node count (default 8)")
    parser.add_argument("--trace", action="store_true",
                        help="print the telemetry span tree afterwards")
    parser.add_argument("--executor",
                        choices=("reference", "compiled", "vectorized",
                                 "numpy"),
                        default=None,
                        help="execution backend: reference (tree-walking "
                             "interpreter), compiled (closure backend, "
                             "default), vectorized (columnar batch "
                             "kernels) or numpy (typed ndarray kernels; "
                             "falls back to vectorized without numpy)")
    parser.add_argument("--no-compiled-exec", action="store_true",
                        help="execute with the reference tree-walking "
                             "interpreter instead of the compiled "
                             "closure backend (same as "
                             "--executor reference)")
    parser.add_argument("--serial-runtime", action="store_true",
                        help="execute DSQL plans serially (one step at "
                             "a time, one node at a time) instead of "
                             "the parallel DAG/thread-pool runtime")
    sub = parser.add_subparsers(dest="command", required=True)

    explain = sub.add_parser(
        "explain", help="compile a query and show plan + DSQL steps")
    explain.add_argument("sql")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the plan and show estimated vs. "
                              "actual rows/bytes/time per DSQL step")
    explain.add_argument("--verbose", action="store_true",
                         help="include memo/pruning compilation counters")
    explain.add_argument("--optimizer", action="store_true",
                         help="append the \"why this plan\" §2.5 baseline "
                              "diff and the optimizer search-space trace")

    run = sub.add_parser(
        "run", help="compile, execute on the appliance, print rows")
    run.add_argument("sql")
    run.add_argument("--max-rows", type=int, default=20,
                     help="rows to print (default 20)")

    memo = sub.add_parser(
        "memo", help="show the serial MEMO the PDW side consumes")
    memo.add_argument("sql")

    stats = sub.add_parser(
        "stats", help="compile a query and print phase timings + counters")
    stats.add_argument("sql")
    stats.add_argument("--json", action="store_true",
                       help="print spans + counters as a JSON document")

    profile = sub.add_parser(
        "profile",
        help="execute with per-node/per-operator profiling: skew + Q-error")
    profile.add_argument("sql")
    profile.add_argument("--json", action="store_true",
                         help="print the profile document as JSON instead "
                              "of tables")
    profile.add_argument("--jsonl", metavar="PATH",
                         help="write the schema-validated JSONL event log")
    profile.add_argument("--prometheus", metavar="PATH",
                         help="write the metrics registry in Prometheus "
                              "text format")

    why = sub.add_parser(
        "why",
        help='"why this plan": §2.5 baseline diff + search-space trace')
    why.add_argument("sql")
    why.add_argument("--hint", action="append", default=[],
                     metavar="TABLE=STRATEGY",
                     help="§3.1 query hint, e.g. orders=replicate "
                          "(repeatable)")
    why.add_argument("--top", type=int, default=10,
                     help="rejected movements to show (default 10)")
    why.add_argument("--jsonl", metavar="PATH",
                     help="write the schema-validated optimizer event log")
    why.add_argument("--prometheus", metavar="PATH",
                     help="write the metrics registry in Prometheus "
                          "text format")

    sub.add_parser(
        "calibrate", help="run the lambda calibration (paper 3.3.3)")

    serve = sub.add_parser(
        "serve",
        help="run the multi-user serving layer under a TPC-H traffic "
             "mix: plan cache + admission control + percentiles")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads (default 4)")
    serve.add_argument("--queries", type=int, default=8,
                       help="queries per client (default 8)")
    serve.add_argument("--seed", type=int, default=2012,
                       help="traffic RNG seed (default 2012)")
    serve.add_argument("--max-in-flight", type=int, default=4,
                       help="admission: concurrent executions (default 4)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="admission: wait-queue bound (default 32)")
    serve.add_argument("--cache-size", type=int, default=64,
                       help="plan cache capacity (default 64)")
    serve.add_argument("--slow-seconds", type=float, default=None,
                       help="flight-recorder slow-query threshold in "
                            "seconds (default 1.0)")
    serve.add_argument("--smoke", action="store_true",
                       help="CI smoke mode: require plan-cache hits and "
                            "a reported p99, fail on any internal "
                            "DeprecationWarning")
    serve.add_argument("--prometheus", metavar="PATH",
                       help="write the service metrics registry in "
                            "Prometheus text format")

    bench = sub.add_parser(
        "bench",
        help="service throughput benchmark: p50/p95/p99 + queries/sec")
    bench.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads (default 8)")
    bench.add_argument("--queries", type=int, default=12,
                       help="queries per client (default 12)")
    bench.add_argument("--seed", type=int, default=2012,
                       help="traffic RNG seed (default 2012)")
    bench.add_argument("--max-in-flight", type=int, default=4,
                       help="admission: concurrent executions (default 4)")
    bench.add_argument("--max-queue", type=int, default=64,
                       help="admission: wait-queue bound (default 64)")
    bench.add_argument("--cache-size", type=int, default=64,
                       help="plan cache capacity (default 64)")
    bench.add_argument("--output", metavar="PATH",
                       help="also append the report to PATH")

    requests = sub.add_parser(
        "requests",
        help="drive the service, then query the sys.dm_pdw_* system "
             "views over SQL and print the request flight recorder")
    requests.add_argument("--clients", type=int, default=4,
                          help="concurrent client threads (default 4)")
    requests.add_argument("--queries", type=int, default=8,
                          help="queries per client (default 8)")
    requests.add_argument("--seed", type=int, default=2012,
                          help="traffic RNG seed (default 2012)")
    requests.add_argument("--max-in-flight", type=int, default=4,
                          help="admission: concurrent executions "
                               "(default 4)")
    requests.add_argument("--max-queue", type=int, default=32,
                          help="admission: wait-queue bound (default 32)")
    requests.add_argument("--cache-size", type=int, default=64,
                          help="plan cache capacity (default 64)")
    requests.add_argument("--slow", action="store_true",
                          help="show only requests over the slow-query "
                               "threshold")
    requests.add_argument("--slow-ms", type=float, default=None,
                          help="slow-query threshold in milliseconds "
                               "(default 1000)")
    requests.add_argument("--json", action="store_true",
                          help="print the flight-recorder events as a "
                               "JSON array instead of tables")
    requests.add_argument("--jsonl", metavar="PATH",
                          help="write the schema-validated "
                               "request_complete event log")
    requests.add_argument("--prometheus", metavar="PATH",
                          help="write pdw_request_* series (plus the "
                               "service metrics) in Prometheus text "
                               "format")

    querystore = sub.add_parser(
        "querystore",
        help="drive the service, then dogfood the sys.query_store_* "
             "views and print plan history + regression verdicts")
    querystore.add_argument("--clients", type=int, default=4,
                            help="concurrent client threads (default 4)")
    querystore.add_argument("--queries", type=int, default=8,
                            help="queries per client (default 8)")
    querystore.add_argument("--seed", type=int, default=2012,
                            help="traffic RNG seed (default 2012)")
    querystore.add_argument("--max-in-flight", type=int, default=4,
                            help="admission: concurrent executions "
                                 "(default 4)")
    querystore.add_argument("--max-queue", type=int, default=32,
                            help="admission: wait-queue bound "
                                 "(default 32)")
    querystore.add_argument("--cache-size", type=int, default=64,
                            help="plan cache capacity (default 64)")
    querystore.add_argument("--hint", action="append", default=[],
                            metavar="TABLE=STRATEGY",
                            help="after the plain traffic, re-run every "
                                 "mix template touching TABLE with this "
                                 "§3.1 hint — forces an alternate plan "
                                 "under the same shape (repeatable)")
    querystore.add_argument("--hinted-repeats", type=int, default=2,
                            help="executions per hinted template "
                                 "(default 2)")
    querystore.add_argument("--top", type=int, default=10,
                            help="hottest shapes to show (default 10)")
    querystore.add_argument("--factor", type=float, default=1.5,
                            help="regression factor: flag when the "
                                 "current plan's mean latency exceeds a "
                                 "prior plan's by this (default 1.5)")
    querystore.add_argument("--regressions", action="store_true",
                            help="print only the regression verdicts")
    querystore.add_argument("--save", metavar="PATH",
                            help="persist the store as JSONL "
                                 "query_store_flush events")
    querystore.add_argument("--load", metavar="PATH",
                            help="load a previously saved store before "
                                 "the traffic runs (baselines re-keyed "
                                 "to the current schema_version)")
    querystore.add_argument("--jsonl", metavar="PATH",
                            help="write the schema-validated "
                                 "query_store_flush event log")
    querystore.add_argument("--prometheus", metavar="PATH",
                            help="write pdw_query_store_* series (plus "
                                 "the service metrics) in Prometheus "
                                 "text format")

    return parser


def _parse_hints(pairs: List[str]) -> Optional[dict]:
    """``TABLE=STRATEGY`` pairs from repeated ``--hint`` flags; raises
    SystemExit-friendly ValueError on a malformed pair."""
    hints = {}
    for pair in pairs:
        table, _sep, strategy = pair.partition("=")
        if not table or not strategy:
            raise ValueError(
                f"bad --hint {pair!r}: expected TABLE=STRATEGY")
        hints[table] = strategy
    return hints or None


def _cli_options(args) -> ExecutionOptions:
    """ExecutionOptions from the global CLI flags.  An explicit
    ``--executor`` wins; ``--no-compiled-exec`` is the legacy spelling
    of ``--executor reference``."""
    executor = args.executor
    if executor is None and args.no_compiled_exec:
        executor = "reference"
    return ExecutionOptions(
        executor=executor,
        parallel=False if args.serial_runtime else None)


def _run_service_traffic(args):
    """Build a service, drive the traffic mix, return (service, report).

    The service is closed before returning; its metrics/stats stay
    readable.
    """
    from repro.service import PdwService, run_traffic

    service = PdwService(
        scale=args.scale, node_count=args.nodes,
        options=_cli_options(args),
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        plan_cache_size=args.cache_size,
        slow_seconds=getattr(args, "slow_seconds", None))
    try:
        report = run_traffic(service, clients=args.clients,
                             queries_per_client=args.queries,
                             seed=args.seed)
    finally:
        service.close()
    return service, report


def _cmd_serve(args) -> int:
    from repro.obs.export import requests_to_metrics
    from repro.service import render_report

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        service, report = _run_service_traffic(args)
    print(render_report(report))
    hits = service.plan_cache.stats()["hits"]
    print(f"pdw_service_plan_cache_hits {hits}")
    # Fold the flight recorder into the service registry so the serve
    # output and --prometheus carry the pdw_request_* series (including
    # pdw_request_slow_total against the configured --slow-seconds).
    requests_to_metrics(service.requests, service.metrics)
    slow = service.requests.stats()["slow"]
    print(f"pdw_request_slow_total {slow}")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(service.metrics_text())
        print(f"-- wrote metrics to {args.prometheus}", file=sys.stderr)
    if not args.smoke:
        return 0
    failures = []
    if hits <= 0:
        failures.append("plan cache recorded no hits")
    if report.completed <= 0:
        failures.append("no queries completed")
    if report.p99 <= 0:
        failures.append("no p99 latency reported")
    internal = [w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "via options= instead" in str(w.message)]
    for warning in internal:
        failures.append(
            f"internal caller hit a deprecated option surface: "
            f"{warning.message} ({warning.filename}:{warning.lineno})")
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def _cmd_bench(args) -> int:
    from repro.service import render_report

    service, report = _run_service_traffic(args)
    del service
    text = render_report(report)
    print(text)
    if args.output:
        with open(args.output, "a", encoding="utf-8") as handle:
            handle.write(text + "\n\n")
        print(f"-- appended report to {args.output}", file=sys.stderr)
    return 0


def _cmd_requests(args) -> int:
    from repro.obs.export import (
        events_to_jsonl,
        requests_to_events,
        requests_to_metrics,
        validate_events,
    )
    from repro.obs.report import render_requests_report
    from repro.obs.requests import RequestRegistry
    from repro.service import PdwService, run_traffic

    registry = RequestRegistry(
        slow_threshold_seconds=(args.slow_ms / 1e3
                                if args.slow_ms is not None else 1.0))
    service = PdwService(
        scale=args.scale, node_count=args.nodes,
        options=_cli_options(args),
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        plan_cache_size=args.cache_size,
        requests=registry)
    try:
        run_traffic(service, clients=args.clients,
                    queries_per_client=args.queries, seed=args.seed)
        # Dogfood: the system views answered through the normal SQL path.
        by_status = service.execute(
            "SELECT status, COUNT(*) AS n FROM sys.dm_pdw_exec_requests "
            "GROUP BY status ORDER BY status")
        cached = service.execute(
            "SELECT shape_key, hit_count, execution_count "
            "FROM sys.dm_pdw_plan_cache ORDER BY execution_count DESC, "
            "shape_key LIMIT 10")
    finally:
        service.close()
    events = requests_to_events(registry)
    if args.json:
        print(json.dumps(events, indent=2, sort_keys=True))
    else:
        print("SELECT status, COUNT(*) AS n "
              "FROM sys.dm_pdw_exec_requests GROUP BY status:")
        for status, n in by_status.rows:
            print(f"  {status:<10} {n}")
        print()
        print("sys.dm_pdw_plan_cache (top 10 by executions):")
        for shape_key, hit_count, executions in cached.rows:
            print(f"  hits={hit_count:<4} execs={executions:<4} "
                  f"{shape_key}")
        print()
        print(render_requests_report(registry, slow_only=args.slow))
    if args.jsonl:
        errors = validate_events(events)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(events_to_jsonl(events))
        print(f"-- wrote {len(events)} events to {args.jsonl}",
              file=sys.stderr)
    if args.prometheus:
        requests_to_metrics(registry, service.metrics)
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(service.metrics_text())
        print(f"-- wrote metrics to {args.prometheus}", file=sys.stderr)
    return 0


def _cmd_querystore(args) -> int:
    import random

    from repro.obs.export import (
        events_to_jsonl,
        query_store_to_metrics,
        validate_events,
    )
    from repro.obs.query_store import QueryStore
    from repro.obs.report import (
        render_query_store_regressions,
        render_query_store_report,
    )
    from repro.service import DEFAULT_MIX, PdwService, run_traffic

    try:
        hints = _parse_hints(args.hint)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    store = QueryStore(regression_factor=args.factor)
    service = PdwService(
        scale=args.scale, node_count=args.nodes,
        options=_cli_options(args),
        max_in_flight=args.max_in_flight,
        max_queue=args.max_queue,
        plan_cache_size=args.cache_size,
        query_store=store)
    try:
        if args.load:
            loaded = store.load(
                args.load,
                schema_version=service.appliance.schema_version)
            print(f"-- loaded {loaded} shapes from {args.load}",
                  file=sys.stderr)
        run_traffic(service, clients=args.clients,
                    queries_per_client=args.queries, seed=args.seed)
        if hints:
            # The hinted pass: force an alternate plan for every mix
            # template that touches a hinted table.  Each repeat runs
            # the template plain and then hinted — the store keys
            # shapes without hints, so both plans land under one shape
            # with the hinted (current) plan last, exactly what the
            # regression detector compares.
            rng = random.Random(args.seed + 1000)
            opts = service.options.override(hints=hints)
            for _ in range(max(1, args.hinted_repeats)):
                for template in DEFAULT_MIX:
                    sql = template.make_sql(rng)
                    lowered = sql.lower()
                    if any(table.lower() in lowered for table in hints):
                        service.execute(sql)
                        service.execute(sql, options=opts)
        # Dogfood: the query-store views answered through normal SQL.
        runtime = service.execute(
            "SELECT query_id, plan_hash, execution_count, mean_ms "
            "FROM sys.query_store_runtime_stats "
            "ORDER BY execution_count DESC, query_id, plan_hash "
            "LIMIT 10")
    finally:
        service.close()
    regressions = store.regressions()
    if args.regressions:
        print(render_query_store_regressions(regressions))
    else:
        print("SELECT query_id, plan_hash, execution_count, mean_ms "
              "FROM sys.query_store_runtime_stats (top 10):")
        for query_id, plan_hash, execs, mean_ms in runtime.rows:
            print(f"  Q{query_id:<4} {plan_hash}  execs={execs:<4} "
                  f"mean={mean_ms:.3f} ms")
        print()
        print(render_query_store_report(store, top=args.top))
    if args.save:
        count = store.save(args.save)
        print(f"-- saved {count} shapes to {args.save}", file=sys.stderr)
    if args.jsonl:
        events = store.to_events()
        errors = validate_events(events)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(events_to_jsonl(events))
        print(f"-- wrote {len(events)} events to {args.jsonl}",
              file=sys.stderr)
    if args.prometheus:
        query_store_to_metrics(store, service.metrics)
        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(service.metrics_text())
        print(f"-- wrote metrics to {args.prometheus}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "calibrate":
        result = Calibrator(node_count=args.nodes).calibrate()
        truth = GroundTruthConstants()
        constants = result.constants
        print("fitted lambda constants (vs simulator ground truth):")
        for label, fitted, target in (
            ("reader_direct", constants.lambda_reader_direct,
             truth.reader_direct),
            ("reader_hash", constants.lambda_reader_hash,
             truth.reader_hash),
            ("network", constants.lambda_network, truth.network),
            ("writer", constants.lambda_writer, truth.writer),
            ("bulk_copy", constants.lambda_bulk_copy, truth.bulk_copy),
        ):
            print(f"  {label:<14} {fitted:.3e}  (truth {target:.3e})")
        return 0

    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "requests":
        return _cmd_requests(args)
    if args.command == "querystore":
        return _cmd_querystore(args)

    session = PdwSession(
        args.sql, scale=args.scale, node_count=args.nodes,
        options=_cli_options(args))

    if args.command == "memo":
        compiled = session.compile()
        print(compiled.serial.memo.dump(compiled.serial.root_group))

    elif args.command == "explain":
        print(session.explain(analyze=args.analyze, verbose=args.verbose,
                              optimizer=args.optimizer))

    elif args.command == "why":
        from repro.obs.export import (
            events_to_jsonl,
            optimizer_trace_to_events,
            validate_events,
        )

        try:
            hints = _parse_hints(args.hint)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        _compiled, trace, choice = session.plan_choice(
            options=session.options.with_hints(hints))
        from repro.obs.report import render_optimizer_trace_report
        from repro.pdw.why import render_plan_choice

        print(render_plan_choice(choice))
        print()
        print(render_optimizer_trace_report(trace, top_k=args.top))
        if args.jsonl:
            events = optimizer_trace_to_events(trace, plan_choice=choice)
            errors = validate_events(events)
            if errors:
                for error in errors:
                    print(f"schema error: {error}", file=sys.stderr)
                return 1
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                handle.write(events_to_jsonl(events))
            print(f"-- wrote {len(events)} events to {args.jsonl}",
                  file=sys.stderr)
        if args.prometheus:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(session.metrics.render_prometheus())
            print(f"-- wrote metrics to {args.prometheus}",
                  file=sys.stderr)

    elif args.command == "stats":
        session.compile()
        if args.json:
            print(session.tracer.to_json())
        else:
            print(session.stats_report())

    elif args.command == "profile":
        from repro.obs.export import (
            events_to_jsonl,
            profile_to_events,
            validate_events,
        )
        from repro.obs.report import render_profile_report

        profile = session.profile()
        if args.json:
            print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
        else:
            print(render_profile_report(profile))
        if args.jsonl:
            events = profile_to_events(profile)
            errors = validate_events(events)
            if errors:
                for error in errors:
                    print(f"schema error: {error}", file=sys.stderr)
                return 1
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                handle.write(events_to_jsonl(events))
            print(f"-- wrote {len(events)} events to {args.jsonl}",
                  file=sys.stderr)
        if args.prometheus:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(session.metrics.render_prometheus())
            print(f"-- wrote metrics to {args.prometheus}",
                  file=sys.stderr)

    else:  # run
        # session.run() rather than a raw runner call, so the query is
        # tracked by the request registry (and may itself target the
        # sys.dm_pdw_* system views).
        result = session.run()
        print(" | ".join(result.columns))
        for row in result.rows[:args.max_rows]:
            print(" | ".join(str(value) for value in row))
        if len(result.rows) > args.max_rows:
            print(f"... {len(result.rows) - args.max_rows} more rows")
        print(f"-- {len(result.rows)} rows, "
              f"{result.elapsed_seconds * 1e3:.3f} ms simulated "
              f"({result.dms_seconds * 1e3:.3f} ms data movement), "
              f"{len(result.plan.dsql_plan.steps)} DSQL steps, "
              f"request {result.request_id}")

    if args.trace:
        print()
        print("Telemetry spans:")
        print(session.trace_report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
