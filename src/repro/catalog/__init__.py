"""Catalog: table schemas, distribution metadata, statistics and the
shell database of paper §2.2."""

from repro.catalog.schema import (
    Catalog,
    Column,
    DistributionKind,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    TableDistribution,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import (
    ColumnStats,
    Histogram,
    merge_column_stats,
    merge_histograms,
)

__all__ = [
    "Catalog",
    "Column",
    "ColumnStats",
    "DistributionKind",
    "Histogram",
    "ON_CONTROL",
    "REPLICATED",
    "ShellDatabase",
    "TableDef",
    "TableDistribution",
    "hash_distributed",
    "merge_column_stats",
    "merge_histograms",
]
