"""The shell database (paper §2.2).

A shell database is "a SQL Server database that defines all metadata and
statistics about tables, but does not contain any user data".  It lives on
the control node and provides the *single system image* the serial optimizer
compiles against: table definitions (including their PDW distribution),
global row counts, and merged global column statistics.

:class:`ShellDatabase` is exactly that container.  The appliance simulator
(:mod:`repro.appliance`) knows how to derive one from actual distributed
data by computing per-node statistics and merging them.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.catalog.schema import Catalog, TableDef
from repro.catalog.statistics import ColumnStats, Histogram
from repro.common.errors import CatalogError


class ShellDatabase:
    """Metadata + global statistics for every table in the appliance."""

    def __init__(self, catalog: Catalog, node_count: int):
        if node_count < 1:
            raise CatalogError("appliance needs at least one compute node")
        self.catalog = catalog
        self.node_count = node_count
        self._stats: Dict[Tuple[str, str], ColumnStats] = {}

    def set_column_stats(self, table: str, column: str, stats: ColumnStats) -> None:
        """Store merged global statistics for ``table.column``."""
        table_def = self.catalog.table(table)
        table_def.column(column)  # validates existence
        self._stats[(table.lower(), column.lower())] = stats

    def column_stats(self, table: str, column: str) -> ColumnStats:
        """Global statistics for a column, synthesizing a default when the
        column has never been analyzed (magic-number defaults, the way a
        real optimizer falls back to guesses)."""
        key = (table.lower(), column.lower())
        if key in self._stats:
            return self._stats[key]
        table_def = self.catalog.table(table)
        column_def = table_def.column(column)
        rows = float(max(1, table_def.row_count))
        return ColumnStats(
            row_count=rows,
            null_count=0.0,
            distinct_count=max(1.0, rows / 10.0),
            avg_width=float(column_def.sql_type.width),
            histogram=Histogram(),
        )

    def has_column_stats(self, table: str, column: str) -> bool:
        return (table.lower(), column.lower()) in self._stats

    def table(self, name: str) -> TableDef:
        return self.catalog.table(name)

    def tables(self) -> Sequence[TableDef]:
        return self.catalog.tables()

    def avg_row_width(self, table: str) -> float:
        """Average row width from statistics, falling back to declared
        widths — this is the ``w`` of the paper's cost model (§3.3.3)."""
        table_def = self.catalog.table(table)
        total = 0.0
        for column in table_def.columns:
            key = (table.lower(), column.name.lower())
            stats = self._stats.get(key)
            total += stats.avg_width if stats else float(column.sql_type.width)
        return total
