"""Column statistics: equi-depth histograms, and the per-node → global merge.

Paper §2.2: *"To compute global statistics, local statistics are first
computed on each node via the standard SQL Server mechanisms, and are then
merged together to derive global statistics."*

We implement that pipeline faithfully:

* each compute node builds :class:`ColumnStats` (row/null/distinct counts,
  min/max, average width, an equi-depth :class:`Histogram`) over its local
  fragment, and
* :func:`merge_column_stats` combines the per-node statistics into the
  global statistics stored in the shell database.

Cardinality estimation (see :mod:`repro.optimizer.cardinality`) consumes
only the merged form, exactly like the PDW optimizer consumes shell-database
statistics.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

DEFAULT_BUCKETS = 32


def sort_key(value) -> Tuple[int, object]:
    """A total order over heterogeneous SQL values (NULLs first)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, datetime.date):
        return (2, value.toordinal())
    return (3, str(value))


def numeric_position(value) -> float:
    """Map a value onto the real line for within-bucket interpolation.

    Numbers map to themselves, dates to their ordinal, booleans to 0/1 and
    strings to a base-256 expansion of their first eight characters — a
    standard trick that preserves lexicographic order well enough for
    histogram interpolation.
    """
    if value is None:
        return 0.0
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    text = str(value)
    position = 0.0
    scale = 1.0
    for ch in text[:8]:
        scale /= 256.0
        position += min(ord(ch), 255) * scale
    return position


@dataclass(frozen=True)
class Bucket:
    """One equi-depth histogram bucket.

    Covers values in ``(previous upper, upper]``; ``count`` rows and
    ``distinct`` distinct values fall in it.
    """

    upper: object
    count: float
    distinct: float


@dataclass
class Histogram:
    """An equi-depth histogram over non-null values of one column."""

    buckets: List[Bucket] = field(default_factory=list)
    min_value: Optional[object] = None
    max_value: Optional[object] = None

    @property
    def total_count(self) -> float:
        return sum(b.count for b in self.buckets)

    @property
    def total_distinct(self) -> float:
        return sum(b.distinct for b in self.buckets)

    @classmethod
    def build(cls, values: Sequence, num_buckets: int = DEFAULT_BUCKETS) -> "Histogram":
        """Build an equi-depth histogram from raw (non-null) values."""
        non_null = sorted((v for v in values if v is not None), key=sort_key)
        if not non_null:
            return cls()
        target = max(1, len(non_null) // max(1, num_buckets))
        buckets: List[Bucket] = []
        start = 0
        while start < len(non_null):
            end = min(start + target, len(non_null))
            # Extend the bucket so equal values never straddle a boundary.
            while end < len(non_null) and sort_key(non_null[end]) == sort_key(non_null[end - 1]):
                end += 1
            chunk = non_null[start:end]
            distinct = len({sort_key(v) for v in chunk})
            buckets.append(Bucket(chunk[-1], float(len(chunk)), float(distinct)))
            start = end
        return cls(buckets, non_null[0], non_null[-1])

    def estimate_le(self, value) -> float:
        """Estimated number of rows with column value ``<= value``."""
        if not self.buckets:
            return 0.0
        total = 0.0
        key = sort_key(value)
        lower = self.min_value
        for bucket in self.buckets:
            if sort_key(bucket.upper) <= key:
                total += bucket.count
                lower = bucket.upper
                continue
            # value falls inside this bucket: interpolate.
            low_pos = numeric_position(lower)
            high_pos = numeric_position(bucket.upper)
            value_pos = numeric_position(value)
            if high_pos > low_pos:
                fraction = (value_pos - low_pos) / (high_pos - low_pos)
                fraction = min(1.0, max(0.0, fraction))
            else:
                fraction = 0.5
            total += bucket.count * fraction
            break
        return total

    def estimate_eq(self, value) -> float:
        """Estimated number of rows with column value ``= value``."""
        if not self.buckets:
            return 0.0
        key = sort_key(value)
        if self.min_value is not None and key < sort_key(self.min_value):
            return 0.0
        if self.max_value is not None and key > sort_key(self.max_value):
            return 0.0
        for bucket in self.buckets:
            if key <= sort_key(bucket.upper):
                return bucket.count / max(1.0, bucket.distinct)
        return 0.0

    def estimate_range(self, low, high, low_inclusive=True, high_inclusive=True) -> float:
        """Estimated number of rows in a (possibly open-ended) range."""
        if not self.buckets:
            return 0.0
        total = self.total_count
        upper = self.estimate_le(high) if high is not None else total
        if high is not None and not high_inclusive:
            upper -= self.estimate_eq(high)
        lower = self.estimate_le(low) if low is not None else 0.0
        if low is not None and low_inclusive:
            lower -= self.estimate_eq(low)
        return max(0.0, min(total, upper - lower))


@dataclass
class ColumnStats:
    """Statistics for one column of one table (local or global)."""

    row_count: float
    null_count: float
    distinct_count: float
    min_value: Optional[object] = None
    max_value: Optional[object] = None
    avg_width: float = 4.0
    histogram: Histogram = field(default_factory=Histogram)

    @property
    def null_fraction(self) -> float:
        if self.row_count <= 0:
            return 0.0
        return self.null_count / self.row_count

    @classmethod
    def build(cls, values: Sequence, num_buckets: int = DEFAULT_BUCKETS) -> "ColumnStats":
        """Compute exact statistics over raw column values."""
        values = list(values)
        non_null = [v for v in values if v is not None]
        distinct = len({sort_key(v) for v in non_null})
        histogram = Histogram.build(non_null, num_buckets)
        if non_null:
            widths = [_value_width(v) for v in non_null]
            avg_width = sum(widths) / len(widths)
        else:
            avg_width = 4.0
        return cls(
            row_count=float(len(values)),
            null_count=float(len(values) - len(non_null)),
            distinct_count=float(distinct),
            min_value=histogram.min_value,
            max_value=histogram.max_value,
            avg_width=avg_width,
            histogram=histogram,
        )


def _value_width(value) -> float:
    if isinstance(value, str):
        return float(max(1, len(value)))
    if isinstance(value, bool):
        return 1.0
    if isinstance(value, int):
        return 4.0 if -2**31 <= value < 2**31 else 8.0
    if isinstance(value, float):
        return 8.0
    if isinstance(value, datetime.date):
        return 4.0
    return 8.0


def merge_histograms(histograms: Sequence[Histogram],
                     num_buckets: int = DEFAULT_BUCKETS) -> Histogram:
    """Merge per-node equi-depth histograms into one global histogram.

    All source bucket boundaries are pooled and sorted, then adjacent
    fine-grained buckets are coalesced back down to ``num_buckets`` while
    summing row counts.  Distinct counts are summed and later capped by the
    caller's global distinct estimate.
    """
    source = sorted(
        (b for h in histograms for b in h.buckets),
        key=lambda b: sort_key(b.upper),
    )
    if not source:
        return Histogram()
    total = sum(b.count for b in source)
    target = total / max(1, num_buckets)
    merged: List[Bucket] = []
    acc_count = 0.0
    acc_distinct = 0.0
    acc_upper = None
    for bucket in source:
        acc_count += bucket.count
        acc_distinct += bucket.distinct
        acc_upper = bucket.upper
        if acc_count >= target:
            merged.append(Bucket(acc_upper, acc_count, acc_distinct))
            acc_count = 0.0
            acc_distinct = 0.0
    if acc_count > 0:
        merged.append(Bucket(acc_upper, acc_count, acc_distinct))
    mins = [h.min_value for h in histograms if h.min_value is not None]
    maxs = [h.max_value for h in histograms if h.max_value is not None]
    return Histogram(
        merged,
        min(mins, key=sort_key) if mins else None,
        max(maxs, key=sort_key) if maxs else None,
    )


def _low_cardinality_overlap(parts: Sequence["ColumnStats"]) -> bool:
    """True when every fragment has few distinct values over (nearly) the
    same value range — values are then almost surely shared by all nodes
    rather than partitioned, so summing distinct counts over-counts."""
    if len(parts) < 2:
        return False
    for part in parts:
        non_null = max(1.0, part.row_count - part.null_count)
        if part.distinct_count > max(16.0, 0.05 * non_null):
            return False
    positions_min = []
    positions_max = []
    for part in parts:
        if part.min_value is None or part.max_value is None:
            return False
        positions_min.append(numeric_position(part.min_value))
        positions_max.append(numeric_position(part.max_value))
    total_span = max(positions_max) - min(positions_min)
    common_span = min(positions_max) - max(positions_min)
    if total_span <= 0:
        return True  # all fragments hold one identical value range
    return common_span / total_span > 0.9


def merge_column_stats(parts: Sequence[ColumnStats],
                       num_buckets: int = DEFAULT_BUCKETS) -> ColumnStats:
    """Merge per-node column statistics into global statistics (§2.2).

    The distinct count is estimated as ``min(sum of locals, value-domain
    size)`` and never below the largest local count — summing is exact for
    hash-distributed key columns (each value lives on one node) and an upper
    bound for replicated or skewed columns, which the domain cap repairs for
    dense integer keys.
    """
    parts = [p for p in parts if p.row_count > 0]
    if not parts:
        return ColumnStats(0.0, 0.0, 0.0)
    row_count = sum(p.row_count for p in parts)
    null_count = sum(p.null_count for p in parts)
    distinct_sum = sum(p.distinct_count for p in parts)
    max_local_distinct = max(p.distinct_count for p in parts)
    distinct = min(distinct_sum, row_count - null_count)
    distinct = max(distinct, max_local_distinct)
    mins = [p.min_value for p in parts if p.min_value is not None]
    maxs = [p.max_value for p in parts if p.max_value is not None]
    min_value = min(mins, key=sort_key) if mins else None
    max_value = max(maxs, key=sort_key) if maxs else None
    if (isinstance(min_value, int) and isinstance(max_value, int)
            and not isinstance(min_value, bool)):
        domain = max_value - min_value + 1
        distinct = min(distinct, float(domain))
    elif _low_cardinality_overlap(parts):
        # Every node reports few distinct values over the same range —
        # the classic signature of a low-cardinality column replicated
        # across fragments (flags, statuses).  Summing would over-count
        # N-fold; the per-node maximum is the better global estimate.
        distinct = max_local_distinct
    non_null = row_count - null_count
    avg_width = (
        sum(p.avg_width * (p.row_count - p.null_count) for p in parts) / non_null
        if non_null > 0 else parts[0].avg_width
    )
    histogram = merge_histograms([p.histogram for p in parts], num_buckets)
    return ColumnStats(
        row_count=row_count,
        null_count=null_count,
        distinct_count=distinct,
        min_value=min_value,
        max_value=max_value,
        avg_width=avg_width,
        histogram=histogram,
    )
