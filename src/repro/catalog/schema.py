"""Table schema and distribution metadata.

In PDW a user table is either **hash-partitioned** on a column across the
compute nodes or **replicated** on every compute node (paper §2.1).  The
control node additionally holds small tables of its own (e.g. final result
staging), which we model with the ``CONTROL`` distribution.  Temp tables
produced by DMS operations take whatever distribution the move created.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import CatalogError
from repro.common.types import SqlType


class DistributionKind(enum.Enum):
    """How a table's rows are placed on the appliance."""

    HASH = "hash"            # hash-partitioned on distribution columns
    REPLICATED = "replicated"  # full copy on every compute node
    CONTROL = "control"      # single copy on the control node


@dataclass(frozen=True)
class TableDistribution:
    """A table's physical placement: kind plus hash columns when HASH."""

    kind: DistributionKind
    columns: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind is DistributionKind.HASH and not self.columns:
            raise CatalogError("hash distribution requires column(s)")
        if self.kind is not DistributionKind.HASH and self.columns:
            raise CatalogError(f"{self.kind.value} distribution takes no columns")

    def __str__(self) -> str:
        if self.kind is DistributionKind.HASH:
            return f"HASH({', '.join(self.columns)})"
        return self.kind.value.upper()


def hash_distributed(*columns: str) -> TableDistribution:
    """Distribution spec for a table hash-partitioned on ``columns``."""
    return TableDistribution(DistributionKind.HASH, tuple(columns))


REPLICATED = TableDistribution(DistributionKind.REPLICATED)
ON_CONTROL = TableDistribution(DistributionKind.CONTROL)


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def __str__(self) -> str:
        return f"{self.name} {self.sql_type}"


@dataclass
class TableDef:
    """A table definition as stored in the shell database.

    ``row_count`` is the *global* cardinality across the appliance; the
    shell database keeps it alongside merged statistics so the optimizer
    sees the single-system image (paper §2.2).
    """

    name: str
    columns: List[Column]
    distribution: TableDistribution
    row_count: int = 0
    is_temp: bool = False
    # System (DMV) pseudo-tables: snapshot-materialized observability
    # views whose contents churn on every refresh.  They live in the
    # catalog like any table but never count as a schema change — the
    # plan cache must survive a DMV refresh — and they are excluded
    # from the statistics pipeline and temp-table cleanup alike.
    is_system: bool = False
    primary_key: Tuple[str, ...] = ()
    _by_name: Dict[str, Column] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        seen = set()
        for column in self.columns:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(key)
            self._by_name[key] = column
        for dist_col in self.distribution.columns:
            if dist_col.lower() not in self._by_name:
                raise CatalogError(
                    f"distribution column {dist_col!r} not in table {self.name!r}")
        for pk_col in self.primary_key:
            if pk_col.lower() not in self._by_name:
                raise CatalogError(
                    f"primary key column {pk_col!r} not in table {self.name!r}")

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    @property
    def row_width(self) -> int:
        """Declared raw byte width of a row (cost-model input)."""
        return sum(c.sql_type.width for c in self.columns)


class Catalog:
    """A named collection of table definitions.

    The same class backs both the shell database on the control node and
    each compute node's local catalog (where every table appears with its
    local fragment's row count).
    """

    def __init__(self, tables: Optional[Sequence[TableDef]] = None):
        self._tables: Dict[str, TableDef] = {}
        for table in tables or ():
            self.add_table(table)

    def add_table(self, table: TableDef) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def table(self, name: str) -> TableDef:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[TableDef]:
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __len__(self) -> int:
        return len(self._tables)
