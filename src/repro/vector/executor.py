"""Batch-at-a-time logical-plan execution over columnar fragments.

:class:`VectorInterpreter` is API-compatible with
:class:`repro.appliance.interpreter.PlanInterpreter` — same constructor
shape (``tables``, ``stats``, ``observer``), same ``run_query`` /
``run`` entry points, same :class:`InterpreterStats` counter semantics,
and the same postorder ``observer.record(op, rows_out)`` protocol — but
data flows between operators as :class:`ColumnBatch` fragments instead
of per-row env dicts:

* scans transpose the needed storage columns in one pass;
* predicates become selection vectors (row indices where the compiled
  kernel yielded True) and a single gather compacts the batch;
* the hash join builds its table from the key *column* in one pass and
  probes with the key array, producing candidate index pairs that one
  gather turns into the output batch;
* GROUP BY / DISTINCT hash key columns into first-occurrence member
  index lists and aggregate over gathered value columns.

Row order, group order, NULL handling, empty-input scalar-aggregate
rows and error behaviour all match the row backends exactly — the
``tests/vector`` differential suite pins all three executors against
each other on the full TPC-H workload, row-for-row.
"""

from __future__ import annotations

import operator
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.appliance.interpreter import InterpreterStats

from repro.algebra import expressions as ex
from repro.algebra.evaluator import UnboundColumn
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.statistics import sort_key
from repro.common.errors import ExecutionError
from repro.vector.column_batch import ColumnBatch
from repro.vector.kernels import compile_kernel, compile_selection


class VectorInterpreter:
    """Evaluates a bound logical tree batch-at-a-time.

    Drop-in peer of :class:`~repro.appliance.interpreter.PlanInterpreter`
    (which hosts the other two scalar backends); the DMS runtime picks
    the class per the resolved ``executor`` option.
    """

    def __init__(self, tables: Dict[str, List[Tuple]],
                 stats: Optional["InterpreterStats"] = None,
                 observer=None):
        if stats is None:
            # Imported here (not at module level): the appliance package
            # imports this module for executor dispatch, so a top-level
            # import back into it would be circular.
            from repro.appliance.interpreter import InterpreterStats
            stats = InterpreterStats()
        self.tables = {name.lower(): rows for name, rows in tables.items()}
        self.stats = stats
        self.observer = observer

    # -- entry points -------------------------------------------------------------

    def run_query(self, query: Query) -> List[Tuple]:
        """Execute a bound query, honoring ORDER BY and TOP."""
        started = time.perf_counter()
        try:
            return self._run_query(query)
        finally:
            self.stats.wall_seconds += time.perf_counter() - started

    def _run_query(self, query: Query) -> List[Tuple]:
        return self._materialize(query, self.run(query.root))

    def _materialize(self, query: Query,
                     batch: ColumnBatch) -> List[Tuple]:
        """Turn the root batch into output rows: ORDER BY (stable,
        per-key, NULLs-first via ``sort_key``), TOP, column-to-row zip.
        Split out so subclasses with a different batch representation
        (the numpy backend) can reuse it on a native-list view."""
        length = batch.length
        output_cols = []
        for var in query.output_columns():
            column = batch.columns.get(var.id)
            if column is None:
                column = [None] * length
            output_cols.append(column)
        if query.order_by:
            order = list(range(length))
            for var, ascending in reversed(query.order_by):
                key_col = batch.columns.get(var.id)
                if key_col is None:
                    continue  # all-NULL sort key: stable no-op
                order.sort(key=lambda i: sort_key(key_col[i]),
                           reverse=not ascending)
            if query.limit is not None:
                order = order[:query.limit]
            return [tuple(col[i] for col in output_cols) for i in order]
        if output_cols:
            rows = list(zip(*output_cols))
        else:
            rows = [()] * length
        if query.limit is not None:
            rows = rows[:query.limit]
        return rows

    def run(self, op: LogicalOp) -> ColumnBatch:
        batch = self._dispatch(op)
        if self.observer is not None:
            self.observer.record(op, batch.length)
        return batch

    def _dispatch(self, op: LogicalOp) -> ColumnBatch:
        if isinstance(op, LogicalGet):
            return self._run_get(op)
        if isinstance(op, LogicalSelect):
            return self._run_select(op)
        if isinstance(op, LogicalProject):
            return self._run_project(op)
        if isinstance(op, LogicalJoin):
            return self._run_join(op)
        if isinstance(op, LogicalGroupBy):
            return self._run_group_by(op)
        if isinstance(op, LogicalUnionAll):
            return self._run_union(op)
        raise ExecutionError(f"cannot interpret {type(op).__name__}")

    # -- operators ------------------------------------------------------------------

    def _run_get(self, op: LogicalGet) -> ColumnBatch:
        name = op.table.name.lower()
        if name not in self.tables:
            raise ExecutionError(f"table {op.table.name!r} not on this node")
        rows = self.tables[name]
        self.stats.rows_scanned += len(rows)
        indexes = [op.table.column_index(var.name) for var in op.columns]
        length = len(rows)
        if not indexes or not length:
            return ColumnBatch({var.id: [] for var in op.columns}, length)
        if len(indexes) == 1:
            index = indexes[0]
            return ColumnBatch(
                {op.columns[0].id: [row[index] for row in rows]}, length)
        # One C-level pass: pick the needed fields per row, then
        # transpose the picked tuples into columns.
        pick = operator.itemgetter(*indexes)
        columns = dict(zip((var.id for var in op.columns),
                           zip(*map(pick, rows))))
        return ColumnBatch(columns, length)

    def _run_select(self, op: LogicalSelect) -> ColumnBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        selection = compile_selection(op.predicate)(child)
        if len(selection) == child.length:
            return child  # nothing filtered: batches are immutable
        return child.take(selection)

    def _run_project(self, op: LogicalProject) -> ColumnBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        if all(isinstance(expr, ex.ColumnVar) for _, expr in op.outputs):
            if all(var.id == expr.id for var, expr in op.outputs):
                return child  # pure column pruning: pass through
            try:
                columns = {var.id: child.columns[expr.id]
                           for var, expr in op.outputs}
            except KeyError as exc:
                raise UnboundColumn(exc.args[0]) from None
            return ColumnBatch(columns, child.length)
        columns = {var.id: compile_kernel(expr)(child)
                   for var, expr in op.outputs}
        return ColumnBatch(columns, child.length)

    # -- join ---------------------------------------------------------------------

    def _run_join(self, op: LogicalJoin) -> ColumnBatch:
        left = self.run(op.left)
        right = self.run(op.right)
        self.stats.rows_processed += left.length + right.length
        left_ids = frozenset(var.id for var in op.left.output_columns())
        right_ids = frozenset(var.id for var in op.right.output_columns())
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)
        residual = op.predicate
        if pairs and len(pairs) == len(ex.conjuncts(op.predicate)):
            # Hash match already proves every conjunct (keys non-NULL
            # and ==-equal): no residual re-check needed.
            residual = None
        if pairs:
            left_idx, right_idx = self._hash_candidates(left, right, pairs)
        else:
            # Nested-loop candidates, left-major like the row backends.
            left_idx = [i for i in range(left.length)
                        for _ in range(right.length)]
            right_idx = list(range(right.length)) * left.length
        if residual is not None and left_idx:
            candidate = _combine(left, right, left_idx, right_idx)
            values = compile_kernel(residual)(candidate)
            keep = [k for k, value in enumerate(values) if value is True]
            if len(keep) != len(left_idx):
                left_idx = [left_idx[k] for k in keep]
                right_idx = [right_idx[k] for k in keep]
        kind = op.kind
        if kind in (JoinKind.INNER, JoinKind.CROSS):
            return _combine(left, right, left_idx, right_idx)
        if kind is JoinKind.SEMI:
            # left_idx is non-decreasing, so first occurrences are
            # already in left-row order.
            seen = set()
            add = seen.add
            out = [i for i in left_idx if i not in seen and not add(i)]
            return left.take(out)
        if kind is JoinKind.ANTI:
            matched = set(left_idx)
            return left.take([i for i in range(left.length)
                              if i not in matched])
        if kind is JoinKind.LEFT:
            return self._left_outer(left, right, left_idx, right_idx)
        raise ExecutionError(f"unsupported join kind {kind}")

    @staticmethod
    def _hash_candidates(left: ColumnBatch, right: ColumnBatch, pairs
                         ) -> Tuple[List[int], List[int]]:
        """Candidate index pairs for the equi-join keys, in the row
        backends' emission order (left-major, bucket in right-scan
        order).  Missing key columns behave as all-NULL (``env.get``)."""
        left_idx: List[int] = []
        right_idx: List[int] = []
        if len(pairs) == 1:
            left_key = pairs[0][0].id
            right_key = pairs[0][1].id
            table: Dict[object, List[int]] = {}
            right_col = right.columns.get(right_key)
            if right_col is not None:
                lookup = table.get
                for j, value in enumerate(right_col):
                    if value is not None:
                        bucket = lookup(value)
                        if bucket is None:
                            table[value] = [j]
                        else:
                            bucket.append(j)
            left_col = left.columns.get(left_key)
            if left_col is not None and table:
                lookup = table.get
                extend_left = left_idx.extend
                extend_right = right_idx.extend
                for i, value in enumerate(left_col):
                    if value is not None:
                        bucket = lookup(value)
                        if bucket:
                            extend_left([i] * len(bucket))
                            extend_right(bucket)
            return left_idx, right_idx

        left_cols = [left.columns.get(lv.id) for lv, _ in pairs]
        right_cols = [right.columns.get(rv.id) for _, rv in pairs]
        table = {}
        if all(col is not None for col in right_cols):
            for j, key in enumerate(zip(*right_cols)):
                if any(value is None for value in key):
                    continue
                table.setdefault(key, []).append(j)
        if table and all(col is not None for col in left_cols):
            for i, key in enumerate(zip(*left_cols)):
                if any(value is None for value in key):
                    continue
                bucket = table.get(key)
                if bucket:
                    left_idx.extend([i] * len(bucket))
                    right_idx.extend(bucket)
        return left_idx, right_idx

    @staticmethod
    def _left_outer(left: ColumnBatch, right: ColumnBatch,
                    left_idx: List[int], right_idx: List[int]
                    ) -> ColumnBatch:
        """Merge surviving match pairs with NULL-padded unmatched left
        rows, walking the (non-decreasing) left index vector once."""
        final_left: List[int] = []
        final_right: List[int] = []
        position = 0
        total = len(left_idx)
        for i in range(left.length):
            if position < total and left_idx[position] == i:
                while position < total and left_idx[position] == i:
                    final_left.append(i)
                    final_right.append(right_idx[position])
                    position += 1
            else:
                final_left.append(i)
                final_right.append(-1)  # NULL padding sentinel
        return _combine(left, right, final_left, final_right, pad=True)

    # -- grouping -----------------------------------------------------------------

    def _run_group_by(self, op: LogicalGroupBy) -> ColumnBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        key_ids = [k.id for k in op.keys]
        members_list = self._group_members(child, key_ids)

        if not op.keys and not members_list:
            # Scalar aggregation over an empty input: one row of
            # neutral aggregate values (SQL semantics).
            return ColumnBatch({
                var.id: [0 if agg.func == "COUNT" else None]
                for var, agg in op.aggregates
            }, 1)

        group_count = len(members_list)
        columns: Dict[int, List] = {}
        for key_id in key_ids:
            source = child.columns.get(key_id)
            if source is None:
                columns[key_id] = [None] * group_count
            else:
                columns[key_id] = [source[members[0]]
                                   for members in members_list]
        for var, agg in op.aggregates:
            columns[var.id] = _aggregate_column(agg, child, members_list)
        return ColumnBatch(columns, group_count)

    @staticmethod
    def _group_members(child: ColumnBatch,
                       key_ids: List[int]) -> List[List[int]]:
        """Member row-index lists per group, in first-occurrence order.

        bools are normalized to ``("b", value)`` exactly as the row
        backends' ``_group_key`` does, keeping True distinct from 1."""
        length = child.length
        if not key_ids:
            return [list(range(length))] if length else []
        groups: Dict[object, List[int]] = {}
        members_list: List[List[int]] = []
        lookup = groups.get
        if len(key_ids) == 1:
            column = child.columns.get(key_ids[0])
            if column is None:
                return [list(range(length))] if length else []
            if _has_bool(column):
                for i, key in enumerate(column):
                    if key.__class__ is bool:
                        key = ("b", key)
                    members = lookup(key)
                    if members is None:
                        groups[key] = members = []
                        members_list.append(members)
                    members.append(i)
                return members_list
            # Bool-free column (one pre-scan): raw values are already
            # the row backends' group keys.
            for i, key in enumerate(column):
                members = lookup(key)
                if members is None:
                    groups[key] = members = []
                    members_list.append(members)
                members.append(i)
            return members_list
        key_columns = [child.columns.get(k) or [None] * length
                       for k in key_ids]
        if any(_has_bool(column) for column in key_columns):
            for i, raw in enumerate(zip(*key_columns)):
                key = tuple(
                    ("b", value) if value.__class__ is bool else value
                    for value in raw)
                members = lookup(key)
                if members is None:
                    groups[key] = members = []
                    members_list.append(members)
                members.append(i)
            return members_list
        for i, key in enumerate(zip(*key_columns)):
            members = lookup(key)
            if members is None:
                groups[key] = members = []
                members_list.append(members)
            members.append(i)
        return members_list

    # -- union --------------------------------------------------------------------

    def _run_union(self, op: LogicalUnionAll) -> ColumnBatch:
        pieces: List[List] = [[] for _ in op.outputs]
        total = 0
        for child_op, branch in zip(op.children, op.branch_columns):
            child = self.run(child_op)
            total += child.length
            for slot, source in enumerate(branch):
                column = child.columns.get(source.id)
                if column is None:
                    pieces[slot].append([None] * child.length)
                else:
                    pieces[slot].append(column)
        columns: Dict[int, List] = {}
        for var, chunks in zip(op.outputs, pieces):
            merged: List = []
            for chunk in chunks:
                merged.extend(chunk)
            columns[var.id] = merged
        return ColumnBatch(columns, total)


# -- helpers --------------------------------------------------------------------


def _has_bool(column: List) -> bool:
    """One pass deciding whether group keys need bool normalization —
    buys back the per-row tuple rebuild on the (overwhelmingly common)
    bool-free key columns."""
    return any(value.__class__ is bool for value in column)


def _combine(left: ColumnBatch, right: ColumnBatch,
             left_idx: List[int], right_idx: List[int],
             pad: bool = False) -> ColumnBatch:
    """Gather matched index pairs into one combined batch.  With
    ``pad=True`` a ``-1`` right index yields NULLs for every right
    column (LEFT JOIN padding)."""
    columns: Dict[int, List] = {}
    for cid, column in left.columns.items():
        columns[cid] = [column[i] for i in left_idx]
    if pad:
        for cid, column in right.columns.items():
            columns[cid] = [None if j < 0 else column[j]
                            for j in right_idx]
    else:
        for cid, column in right.columns.items():
            columns[cid] = [column[j] for j in right_idx]
    return ColumnBatch(columns, len(left_idx))


def _aggregate_column(agg: ex.AggExpr, child: ColumnBatch,
                      members_list: List[List[int]]) -> List:
    """One aggregate value per group, over the kernel-evaluated argument
    column.  NULL filtering, DISTINCT, and the SUM/MIN/MAX/COUNT
    reductions mirror the row backends' ``_aggregate`` exactly."""
    from repro.appliance.interpreter import _distinct  # cycle guard
    if agg.func == "COUNT" and agg.arg is None:
        return [len(members) for members in members_list]
    argument = compile_kernel(agg.arg)(child)
    length = child.length
    out = []
    append = out.append
    for members in members_list:
        if len(members) == length:
            # Whole-batch group (scalar aggregate): skip the gather.
            values = [value for value in argument if value is not None]
        else:
            values = [value for i in members
                      if (value := argument[i]) is not None]
        if agg.distinct:
            values = _distinct(values)
        if agg.func == "COUNT":
            append(len(values))
        elif not values:
            append(None)
        elif agg.func == "SUM":
            total = values[0]
            for value in values[1:]:
                total += value
            append(total)
        elif agg.func == "MIN":
            append(min(values, key=sort_key))
        elif agg.func == "MAX":
            append(max(values, key=sort_key))
        else:
            raise ExecutionError(f"unsupported aggregate {agg.func}")
    return out
