"""Numpy batch-at-a-time logical-plan execution (the fourth executor).

:class:`NumpyInterpreter` subclasses
:class:`~repro.vector.executor.VectorInterpreter` and overrides every
operator with an array fast path over
:class:`~repro.vector.np_batch.ArrayBatch` fragments:

* scans columnarize the needed storage columns into typed arrays once
  per (table snapshot, column) and cache them — repeated steps over
  the same fragments skip the transpose entirely;
* filters evaluate the predicate to one boolean mask and compress;
* projections run the numpy kernel compiler
  (:mod:`repro.vector.np_kernels`);
* the single-key hash join sorts the build side's int64 key column
  once (stable argsort) and probes with two ``searchsorted`` calls,
  emitting candidates in the row backends' exact order (left-major,
  matches in right-scan order) with vectorized range arithmetic;
* GROUP BY factorizes the key columns to dense group codes
  (``np.unique`` + first-occurrence reordering, mixed-radix for
  multiple keys) and aggregates with sequential C reductions —
  ``np.bincount`` with weights accumulates float SUMs left-to-right
  exactly like the row backends' ``total += value`` loop, so results
  are bit-identical, not merely close.

Every fast path checks its preconditions at runtime (column kinds,
int64 overflow headroom, NaN absence where ordering semantics differ)
and otherwise falls back to the parent's list implementation over the
batch's native view — parity first, speed where it is safe.  Stats
counters, observer events, group order, row order and error behaviour
all match the row backends; the four-backend differential suite pins
them on the full TPC-H workload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algebra import expressions as ex
from repro.algebra.evaluator import UnboundColumn
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
    Query,
)
from repro.catalog.statistics import sort_key
from repro.common.errors import ExecutionError
from repro.vector.executor import VectorInterpreter
from repro.vector.np_batch import (
    ArrayBatch,
    NumpyColumn,
    column_from_list,
)
from repro.vector.np_kernels import (
    compile_np_kernel,
    compile_np_selection,
)

# -- scan columnarization cache ---------------------------------------------------
#
# Keyed by (id(rows), len(rows)): NodeStorage.insert grows a table's
# row list *in place*, so identity alone is not a fingerprint — but
# (identity, length) is, because inserts are append-only and every
# other mutation path (adopt / copy-on-write) replaces the list object.
# Entries pin the row list, so a live cache key's id cannot be reused.

_SCAN_CACHE_LIMIT = 128
_SCAN_CACHE: "OrderedDict[Tuple[int, int], Tuple[List[Tuple], Dict[int, NumpyColumn]]]" = (
    OrderedDict())
_SCAN_LOCK = threading.Lock()


def clear_scan_cache() -> None:
    """Drop cached scan columns (tests / memory pressure)."""
    with _SCAN_LOCK:
        _SCAN_CACHE.clear()


def _scan_columns(rows: List[Tuple],
                  indexes: List[int]) -> Dict[int, NumpyColumn]:
    """Typed columns for the requested storage indexes, cached per
    (row-list identity, length)."""
    key = (id(rows), len(rows))
    with _SCAN_LOCK:
        entry = _SCAN_CACHE.get(key)
        if entry is None:
            entry = (rows, {})
            _SCAN_CACHE[key] = entry
            if len(_SCAN_CACHE) > _SCAN_CACHE_LIMIT:
                _SCAN_CACHE.popitem(last=False)
        else:
            _SCAN_CACHE.move_to_end(key)
        cached = entry[1]
        missing = [i for i in indexes if i not in cached]
    if missing:
        built = {i: column_from_list([row[i] for row in rows])
                 for i in missing}
        with _SCAN_LOCK:
            # Benign race: two workers may build the same column; the
            # last store wins and both results are equivalent.
            cached.update(built)
    return cached


def _null_column(length: int) -> NumpyColumn:
    arr = np.empty(length, dtype=object)
    arr[:] = None
    return NumpyColumn("o", arr)


_EMPTY_IDX = np.zeros(0, dtype=np.int64)

_PAD_FILL = {"i": 0, "f": 0.0, "b": False, "d": 1}
_PAD_DTYPE = {"i": np.int64, "f": np.float64, "b": np.bool_,
              "d": np.int64}


def _pad_take(col: NumpyColumn, idx: np.ndarray) -> NumpyColumn:
    """Gather with ``-1`` meaning NULL (LEFT JOIN padding)."""
    pad = idx < 0
    n = len(idx)
    if col.kind == "o":
        if len(col.values):
            values = col.values[np.where(pad, 0, idx)]
        else:
            values = np.empty(n, dtype=object)
        values[pad] = None
        return NumpyColumn("o", values)
    if len(col.values):
        safe = np.where(pad, 0, idx)
        values = col.values[safe]
        mask = (col.mask[safe] | pad if col.mask is not None
                else pad.copy())
    else:
        values = np.full(n, _PAD_FILL[col.kind],
                         dtype=_PAD_DTYPE[col.kind])
        mask = np.ones(n, dtype=np.bool_)
    return NumpyColumn(col.kind, values, mask)


def _np_combine(left: ArrayBatch, right: ArrayBatch,
                left_idx: np.ndarray, right_idx: np.ndarray,
                pad: bool = False) -> ArrayBatch:
    columns: Dict[int, NumpyColumn] = {}
    for cid, column in left.columns.items():
        columns[cid] = column.take(left_idx)
    if pad:
        for cid, column in right.columns.items():
            columns[cid] = _pad_take(column, right_idx)
    else:
        for cid, column in right.columns.items():
            columns[cid] = column.take(right_idx)
    return ArrayBatch(columns, len(left_idx))


class NumpyInterpreter(VectorInterpreter):
    """Evaluates a bound logical tree over numpy array batches.

    Drop-in peer of the other interpreters; the DMS runtime selects it
    for ``executor="numpy"``.  Inherits ``run_query`` / ``run`` /
    dispatch and the materialization tail from
    :class:`VectorInterpreter`; only the operators and the batch
    representation differ.
    """

    # -- materialization ----------------------------------------------------------

    def _materialize(self, query: Query, batch: ArrayBatch
                     ) -> List[Tuple]:
        # ORDER BY / TOP / row assembly run on the native-list view:
        # sort keys need `sort_key` over Python values anyway, and this
        # is the single exit where numpy scalars must not leak.
        return super()._materialize(query, batch.list_batch())

    # -- operators ----------------------------------------------------------------

    def _run_get(self, op: LogicalGet) -> ArrayBatch:
        name = op.table.name.lower()
        if name not in self.tables:
            raise ExecutionError(f"table {op.table.name!r} not on this node")
        rows = self.tables[name]
        self.stats.rows_scanned += len(rows)
        indexes = [op.table.column_index(var.name) for var in op.columns]
        length = len(rows)
        if not indexes or not length:
            return ArrayBatch(
                {var.id: column_from_list([]) for var in op.columns},
                length)
        by_index = _scan_columns(rows, indexes)
        return ArrayBatch(
            {var.id: by_index[index]
             for var, index in zip(op.columns, indexes)},
            length)

    def _run_select(self, op: LogicalSelect) -> ArrayBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        keep = compile_np_selection(op.predicate)(child)
        if keep.all():
            return child  # nothing filtered: batches are immutable
        return child.compress(keep)

    def _run_project(self, op: LogicalProject) -> ArrayBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        if all(isinstance(expr, ex.ColumnVar) for _, expr in op.outputs):
            if all(var.id == expr.id for var, expr in op.outputs):
                return child  # pure column pruning: pass through
            try:
                columns = {var.id: child.columns[expr.id]
                           for var, expr in op.outputs}
            except KeyError as exc:
                raise UnboundColumn(exc.args[0]) from None
            return ArrayBatch(columns, child.length)
        columns = {var.id: compile_np_kernel(expr)(child)
                   for var, expr in op.outputs}
        return ArrayBatch(columns, child.length)

    # -- join ---------------------------------------------------------------------

    def _run_join(self, op: LogicalJoin) -> ArrayBatch:
        left = self.run(op.left)
        right = self.run(op.right)
        self.stats.rows_processed += left.length + right.length
        left_ids = frozenset(var.id for var in op.left.output_columns())
        right_ids = frozenset(var.id for var in op.right.output_columns())
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)
        residual = op.predicate
        if pairs and len(pairs) == len(ex.conjuncts(op.predicate)):
            residual = None
        if pairs:
            left_idx, right_idx = self._np_hash_candidates(
                left, right, pairs)
        else:
            left_idx = np.repeat(np.arange(left.length, dtype=np.int64),
                                 right.length)
            right_idx = np.tile(np.arange(right.length, dtype=np.int64),
                                left.length)
        if residual is not None and len(left_idx):
            candidate = _np_combine(left, right, left_idx, right_idx)
            keep = compile_np_kernel(residual)(candidate).is_true_mask()
            if not keep.all():
                left_idx = left_idx[keep]
                right_idx = right_idx[keep]
        kind = op.kind
        if kind in (JoinKind.INNER, JoinKind.CROSS):
            return _np_combine(left, right, left_idx, right_idx)
        if kind is JoinKind.SEMI:
            # left_idx is non-decreasing: first occurrences are the
            # boundaries, already in left-row order.
            if not len(left_idx):
                return left.take(_EMPTY_IDX)
            firsts = np.ones(len(left_idx), dtype=np.bool_)
            firsts[1:] = left_idx[1:] != left_idx[:-1]
            return left.take(left_idx[firsts])
        if kind is JoinKind.ANTI:
            matched = np.zeros(left.length, dtype=np.bool_)
            matched[left_idx] = True
            return left.compress(~matched)
        if kind is JoinKind.LEFT:
            return self._np_left_outer(left, right, left_idx, right_idx)
        raise ExecutionError(f"unsupported join kind {kind}")

    @staticmethod
    def _np_hash_candidates(left: ArrayBatch, right: ArrayBatch,
                            pairs) -> Tuple[np.ndarray, np.ndarray]:
        """Equi-join candidate pairs as index arrays, in the row
        backends' emission order.  The sort-probe fast path requires
        both key columns int64-typed with identical kind (``i`` or
        ``d``) — identical equality semantics to the dict build;
        anything else goes through the parent's hash-dict on native
        values."""
        if len(pairs) == 1:
            lcol = left.columns.get(pairs[0][0].id)
            rcol = right.columns.get(pairs[0][1].id)
            if lcol is None or rcol is None:
                return _EMPTY_IDX, _EMPTY_IDX
            if lcol.kind == rcol.kind and lcol.kind in "id":
                return _sorted_probe(lcol, rcol)
        left_list, right_list = VectorInterpreter._hash_candidates(
            left.list_batch(), right.list_batch(), pairs)
        return (np.array(left_list, dtype=np.int64),
                np.array(right_list, dtype=np.int64))

    @staticmethod
    def _np_left_outer(left: ArrayBatch, right: ArrayBatch,
                       left_idx: np.ndarray, right_idx: np.ndarray
                       ) -> ArrayBatch:
        """Vectorized merge of match pairs with NULL-padded unmatched
        left rows, preserving the pair order within each left row."""
        counts = np.bincount(left_idx, minlength=left.length)
        out_counts = np.maximum(counts, 1)
        final_left = np.repeat(
            np.arange(left.length, dtype=np.int64), out_counts)
        final_right = np.full(int(out_counts.sum()), -1, dtype=np.int64)
        if len(left_idx):
            starts = np.cumsum(out_counts) - out_counts
            pairs_before = np.cumsum(counts) - counts
            within = (np.arange(len(left_idx))
                      - np.repeat(pairs_before, counts))
            positions = np.repeat(starts, counts) + within
            final_right[positions] = right_idx
        return _np_combine(left, right, final_left, final_right,
                           pad=True)

    # -- grouping -----------------------------------------------------------------

    def _run_group_by(self, op: LogicalGroupBy) -> ArrayBatch:
        child = self.run(op.child)
        self.stats.rows_processed += child.length
        key_ids = [k.id for k in op.keys]

        if not op.keys and not child.length:
            # Scalar aggregation over an empty input: one row of
            # neutral aggregate values (SQL semantics).
            return ArrayBatch({
                var.id: column_from_list(
                    [0 if agg.func == "COUNT" else None])
                for var, agg in op.aggregates
            }, 1)

        inverse, first_rows = self._factorize(child, key_ids)
        group_count = len(first_rows)
        columns: Dict[int, NumpyColumn] = {}
        for key_id in key_ids:
            source = child.columns.get(key_id)
            if source is None:
                columns[key_id] = _null_column(group_count)
            else:
                columns[key_id] = source.take(first_rows)
        for var, agg in op.aggregates:
            columns[var.id] = self._np_aggregate(
                agg, child, inverse, group_count)
        return ArrayBatch(columns, group_count)

    @staticmethod
    def _factorize(child: ArrayBatch, key_ids: List[int]
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense group codes in first-occurrence order.

        Returns ``(inverse, first_rows)``: ``inverse[i]`` is row ``i``'s
        group code, ``first_rows[g]`` the first row of group ``g`` —
        group ``g`` appears before group ``g+1`` in the input, exactly
        the row backends' dict-insertion group order.
        """
        length = child.length
        if not key_ids:
            if not length:
                return _EMPTY_IDX, _EMPTY_IDX
            return (np.zeros(length, dtype=np.int64),
                    np.zeros(1, dtype=np.int64))
        if not length:
            return _EMPTY_IDX, _EMPTY_IDX

        combined: Optional[np.ndarray] = None
        for key_id in key_ids:
            codes, cardinality = _column_codes(
                child.columns.get(key_id), child, length)
            if combined is None:
                combined = codes
            else:
                # Mixed radix; cardinalities are bounded by the row
                # count, so the product stays far inside int64 for any
                # realistic key arity.
                combined = combined * np.int64(cardinality) + codes
        uniques, first_index, inverse = np.unique(
            combined, return_index=True, return_inverse=True)
        order = np.argsort(first_index, kind="stable")
        rank = np.empty(len(uniques), dtype=np.int64)
        rank[order] = np.arange(len(uniques), dtype=np.int64)
        return rank[inverse], first_index[order]

    def _np_aggregate(self, agg: ex.AggExpr, child: ArrayBatch,
                      inverse: np.ndarray,
                      group_count: int) -> NumpyColumn:
        """One aggregate value per group.  The typed reductions are
        sequential C loops (``bincount`` / ``add.at`` / ``minimum.at``
        walk the input in row order), so float accumulation order — and
        therefore every output bit — matches the row backends' per-group
        ``total += value``."""
        if agg.func == "COUNT" and agg.arg is None:
            return NumpyColumn(
                "i", np.bincount(inverse, minlength=group_count
                                 ).astype(np.int64))
        argument = compile_np_kernel(agg.arg)(child)
        kind = argument.kind
        if not agg.distinct and kind in "ifd":
            values = argument.values
            if kind == "f" and bool(np.isnan(values).any()):
                # NaN breaks min/max comparison parity with the row
                # backends' pairwise Python loop — let it decide.
                return self._np_aggregate_fallback(agg, argument,
                                                   inverse, group_count)
            nulls = argument.null_mask()
            has_null = bool(nulls.any())
            groups = inverse[~nulls] if has_null else inverse
            kept = values[~nulls] if has_null else values
            counts = np.bincount(groups, minlength=group_count)
            empty = counts == 0
            mask = empty if bool(empty.any()) else None
            if agg.func == "COUNT":
                return NumpyColumn("i", counts.astype(np.int64))
            if agg.func == "SUM":
                if kind == "f":
                    sums = np.bincount(groups, weights=kept,
                                       minlength=group_count)
                    return NumpyColumn("f", sums, mask)
                if kind == "i" and _int_sum_safe(kept):
                    sums = np.zeros(group_count, dtype=np.int64)
                    np.add.at(sums, groups, kept)
                    return NumpyColumn("i", sums, mask)
                return self._np_aggregate_fallback(agg, argument,
                                                   inverse, group_count)
            if agg.func in ("MIN", "MAX"):
                minimum = agg.func == "MIN"
                if kind == "f":
                    sentinel = np.inf if minimum else -np.inf
                else:
                    info = np.iinfo(np.int64)
                    sentinel = info.max if minimum else info.min
                out = np.full(group_count, sentinel, dtype=kept.dtype)
                if minimum:
                    np.minimum.at(out, groups, kept)
                else:
                    np.maximum.at(out, groups, kept)
                if mask is not None:
                    # All-NULL groups: replace the sentinel with a
                    # representable filler under the mask ("d" needs a
                    # valid ordinal for the native view).
                    out[empty] = 1 if kind == "d" else 0
                return NumpyColumn(kind, out, mask)
        return self._np_aggregate_fallback(agg, argument, inverse,
                                           group_count)

    @staticmethod
    def _np_aggregate_fallback(agg: ex.AggExpr, argument: NumpyColumn,
                               inverse: np.ndarray,
                               group_count: int) -> NumpyColumn:
        """Member-list aggregation over native values — the parent's
        ``_aggregate_column`` reduction loop verbatim (DISTINCT, bool
        arithmetic, object values, NaN ordering)."""
        from repro.appliance.interpreter import _distinct  # cycle guard
        members_list: List[List[int]] = [[] for _ in range(group_count)]
        for i, group in enumerate(inverse.tolist()):
            members_list[group].append(i)
        column = argument.pylist()
        out: List = []
        append = out.append
        for members in members_list:
            values = [value for i in members
                      if (value := column[i]) is not None]
            if agg.distinct:
                values = _distinct(values)
            if agg.func == "COUNT":
                append(len(values))
            elif not values:
                append(None)
            elif agg.func == "SUM":
                total = values[0]
                for value in values[1:]:
                    total += value
                append(total)
            elif agg.func == "MIN":
                append(min(values, key=sort_key))
            elif agg.func == "MAX":
                append(max(values, key=sort_key))
            else:
                raise ExecutionError(
                    f"unsupported aggregate {agg.func}")
        return column_from_list(out)

    # -- union --------------------------------------------------------------------

    def _run_union(self, op: LogicalUnionAll) -> ArrayBatch:
        slots: List[List[Tuple[Optional[NumpyColumn], int]]] = [
            [] for _ in op.outputs]
        total = 0
        for child_op, branch in zip(op.children, op.branch_columns):
            child = self.run(child_op)
            total += child.length
            for slot, source in enumerate(branch):
                slots[slot].append(
                    (child.columns.get(source.id), child.length))
        columns: Dict[int, NumpyColumn] = {}
        for var, pieces in zip(op.outputs, slots):
            columns[var.id] = _concat_columns(pieces)
        return ArrayBatch(columns, total)


# -- helpers --------------------------------------------------------------------


def _sorted_probe(lcol: NumpyColumn, rcol: NumpyColumn
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate pairs for one int64 key pair via sort + searchsorted.

    A stable argsort of the build (right) keys keeps equal keys in
    right-scan order, so the slice ``lo[i]:hi[i]`` for probe row ``i``
    enumerates its matches exactly as the dict bucket would; emitting
    probe rows in order makes the result left-major.  NULL keys (the
    masks) never match, as in the dict build/probe.
    """
    rvalues = rcol.values
    if rcol.mask is not None and rcol.mask.any():
        rvalid = np.flatnonzero(~rcol.mask)
        rvalues = rvalues[rvalid]
    else:
        rvalid = None
    if not len(rvalues):
        return _EMPTY_IDX, _EMPTY_IDX
    order = np.argsort(rvalues, kind="stable")
    sorted_keys = rvalues[order]
    right_map = order if rvalid is None else rvalid[order]

    lvalues = lcol.values
    lo = np.searchsorted(sorted_keys, lvalues, side="left")
    hi = np.searchsorted(sorted_keys, lvalues, side="right")
    counts = hi - lo
    if lcol.mask is not None:
        counts = np.where(lcol.mask, 0, counts)
    total = int(counts.sum())
    if not total:
        return _EMPTY_IDX, _EMPTY_IDX
    left_idx = np.repeat(
        np.arange(len(lvalues), dtype=np.int64), counts)
    pairs_before = np.cumsum(counts) - counts
    offsets = (np.arange(total, dtype=np.int64)
               - np.repeat(pairs_before, counts)
               + np.repeat(lo, counts))
    return left_idx, right_map[offsets].astype(np.int64)


def _int_sum_safe(values: np.ndarray) -> bool:
    """Whether summing these int64 values can be proven not to
    overflow (conservative magnitude × count bound)."""
    if not len(values):
        return True
    bound = max(abs(int(values.min())), abs(int(values.max())))
    return bound * len(values) < 2 ** 62


def _column_codes(column: Optional[NumpyColumn], child: ArrayBatch,
                  length: int) -> Tuple[np.ndarray, int]:
    """Injective int64 codes for one key column (NULL gets its own
    code).  Code *order* is arbitrary — the caller re-factorizes the
    combined codes into first-occurrence order."""
    if column is None:
        return np.zeros(length, dtype=np.int64), 1
    kind = column.kind
    if kind == "b":
        codes = column.values.astype(np.int64)
        if column.mask is not None:
            codes = np.where(column.mask, np.int64(2), codes)
        return codes, 3
    if kind in "ifd":
        values = column.values
        if kind == "f" and bool(np.isnan(values).any()):
            # NaN group keys: dict semantics (identity/equality) do
            # not match np.unique's NaN handling — use the dict loop.
            return _object_codes(column.pylist())
        uniques, inverse = np.unique(values, return_inverse=True)
        codes = inverse.astype(np.int64)
        cardinality = len(uniques)
        if column.mask is not None:
            codes = np.where(column.mask, np.int64(cardinality), codes)
            cardinality += 1
        return codes, cardinality
    return _object_codes(column.pylist())


def _object_codes(values: List) -> Tuple[np.ndarray, int]:
    """Dict-insertion codes over native values, with the row backends'
    bool normalization (True stays distinct from 1)."""
    codes = np.empty(len(values), dtype=np.int64)
    table: Dict[object, int] = {}
    next_code = 0
    for i, value in enumerate(values):
        if value.__class__ is bool:
            value = ("b", value)
        code = table.get(value)
        if code is None:
            table[value] = code = next_code
            next_code += 1
        codes[i] = code
    return codes, max(next_code, 1)


def _concat_columns(pieces: List[Tuple[Optional[NumpyColumn], int]]
                    ) -> NumpyColumn:
    """Concatenate one output slot's per-branch columns (``None`` =
    missing column = all NULL).  Same-kind typed branches concatenate
    arrays; anything mixed rebuilds through native values."""
    present = [col for col, _ in pieces if col is not None]
    if len(present) == len(pieces) and present:
        kinds = {col.kind for col in present}
        if len(kinds) == 1:
            kind = kinds.pop()
            values = np.concatenate([col.values for col in present])
            if kind == "o":
                return NumpyColumn("o", values)
            if any(col.mask is not None for col in present):
                mask = np.concatenate([
                    col.mask if col.mask is not None
                    else np.zeros(len(col.values), dtype=np.bool_)
                    for col in present])
            else:
                mask = None
            return NumpyColumn(kind, values, mask)
    merged: List = []
    for col, length in pieces:
        if col is None:
            merged.extend([None] * length)
        else:
            merged.extend(col.pylist())
    return column_from_list(merged)
