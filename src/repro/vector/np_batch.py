"""Dtype-aware numpy column fragments for the numpy executor.

An :class:`ArrayBatch` is the numpy counterpart of
:class:`~repro.vector.column_batch.ColumnBatch`: a mapping from bound
column-variable id to one :class:`NumpyColumn` per column, plus the row
count.  A :class:`NumpyColumn` pairs a typed ndarray with an explicit
NULL mask:

======  ===============  =========================================
kind    values dtype     notes
======  ===============  =========================================
``i``   int64            Python ints (int64-range; wider ints stay
                         object columns)
``f``   float64          Python floats
``b``   bool             Python bools
``d``   int64            ``datetime.date`` as proleptic ordinals
                         (``date.toordinal()`` — a bijection, so
                         comparisons vectorize and values round-trip
                         exactly)
``o``   object           everything else; NULLs inline as ``None``
======  ===============  =========================================

``mask`` is a boolean array with ``True`` marking NULL rows (``None``
when the column has no NULLs); object columns keep ``None`` inline and
never carry a mask.  The typed kinds are what make the backend go:
ufuncs over int64/float64/bool arrays run C loops that drop the GIL,
which is exactly what the parallel node runtime needs.

The **native-value boundary** is load-bearing for bit-identical
equivalence: every value that leaves a batch — materialized result
rows, routed DMS rows, group keys, fallback-kernel inputs — goes
through :meth:`NumpyColumn.pylist`, which produces native Python
``int``/``float``/``bool`` objects (via ``ndarray.tolist``) and
restores ``None`` and ``datetime.date``.  numpy scalars must never
escape: ``np.int64`` is not an ``int`` subclass (``row_bytes`` would
size it differently) and ``repr(np.float64(x))`` is not ``repr(x)``
under numpy 2 (``pdw_hash`` hashes the repr), so a leaked scalar
silently changes byte accounting and row routing.

Columns and batches are immutable by convention, exactly like
``ColumnBatch`` — operators that keep rows build new arrays.
"""

from __future__ import annotations

import datetime
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.vector.column_batch import ColumnBatch

#: Kinds whose ``values`` array is numeric (int64/float64/bool) and
#: whose NULLs live in ``mask``.
MASKED_KINDS = frozenset("ifbd")

_KIND_DTYPE = {
    "i": np.int64,
    "f": np.float64,
    "b": np.bool_,
}

_KIND_FILL = {"i": 0, "f": 0.0, "b": False, "d": datetime.date.min}


class NumpyColumn:
    """One typed column: ``values[i]`` is row ``i``, ``mask[i]`` its
    NULL flag (``mask is None`` ⇒ no NULLs; object kind keeps ``None``
    inline instead)."""

    __slots__ = ("kind", "values", "mask", "_pylist")

    def __init__(self, kind: str, values: np.ndarray,
                 mask: Optional[np.ndarray] = None):
        self.kind = kind
        self.values = values
        self.mask = mask
        self._pylist: Optional[List] = None

    def __len__(self) -> int:
        return len(self.values)

    def pylist(self) -> List:
        """The column as native Python values (the only exit point for
        values leaving the numpy world).  Cached per column."""
        out = self._pylist
        if out is None:
            if self.kind == "d":
                fromordinal = datetime.date.fromordinal
                out = [fromordinal(o) for o in self.values.tolist()]
            else:
                out = self.values.tolist()
            if self.mask is not None:
                for i in np.flatnonzero(self.mask).tolist():
                    out[i] = None
            self._pylist = out
        return out

    def null_mask(self) -> np.ndarray:
        """Boolean array marking NULL rows (always a fresh view-safe
        answer: callers may combine it with ``|``/``&`` freely)."""
        if self.kind == "o":
            return np.fromiter((v is None for v in self.values),
                               np.bool_, len(self.values))
        if self.mask is None:
            return np.zeros(len(self.values), dtype=np.bool_)
        return self.mask

    def is_true_mask(self) -> np.ndarray:
        """Rows whose value ``is True`` — the row backends' filter and
        join-residual test (NULL and non-bool values count as False)."""
        if self.kind == "b":
            if self.mask is None:
                return self.values
            return self.values & ~self.mask
        if self.kind == "o":
            return np.fromiter((v is True for v in self.values),
                               np.bool_, len(self.values))
        return np.zeros(len(self.values), dtype=np.bool_)

    def take(self, indices: np.ndarray) -> "NumpyColumn":
        return NumpyColumn(
            self.kind, self.values[indices],
            None if self.mask is None else self.mask[indices])

    def compress(self, keep: np.ndarray) -> "NumpyColumn":
        return NumpyColumn(
            self.kind, self.values[keep],
            None if self.mask is None else self.mask[keep])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nulls = int(self.null_mask().sum())
        return (f"NumpyColumn(kind={self.kind!r}, rows={len(self)}, "
                f"nulls={nulls})")


def column_from_list(values: Sequence) -> NumpyColumn:
    """Sniff a Python column into the narrowest :class:`NumpyColumn`.

    Type-exact on purpose: ``bool`` is an ``int`` subclass and
    ``datetime.datetime`` quacks like ``date`` but does not round-trip
    through ordinals, so mixed or subclassed columns land in the object
    kind, where semantics are the row backends' by construction.
    """
    n = len(values)
    if not isinstance(values, list):
        values = list(values)
    kinds = set(map(type, values))
    nullable = type(None) in kinds
    kinds.discard(type(None))
    if len(kinds) == 1:
        vtype = next(iter(kinds))
        kind = None
        if vtype is int:
            kind = "i"
        elif vtype is float:
            kind = "f"
        elif vtype is bool:
            kind = "b"
        elif vtype is datetime.date:
            kind = "d"
        if kind is not None:
            try:
                return _typed_column(kind, values, nullable, n)
            except OverflowError:
                pass  # ints beyond int64: keep the object column
    arr = np.empty(n, dtype=object)
    arr[:] = values
    return NumpyColumn("o", arr)


def _typed_column(kind: str, values: List, nullable: bool,
                  n: int) -> NumpyColumn:
    if nullable:
        fill = _KIND_FILL[kind]
        mask = np.fromiter((v is None for v in values), np.bool_, n)
        values = [fill if v is None else v for v in values]
    else:
        mask = None
    if kind == "d":
        arr = np.fromiter((v.toordinal() for v in values), np.int64, n)
    else:
        arr = np.array(values, dtype=_KIND_DTYPE[kind])
    return NumpyColumn(kind, arr, mask)


def const_column(value, length: int) -> NumpyColumn:
    """A constant broadcast to ``length`` rows, typed like
    :func:`column_from_list` would type it."""
    vtype = type(value)
    if vtype is int:
        try:
            return NumpyColumn("i", np.full(length, value, np.int64))
        except OverflowError:
            pass
    elif vtype is float:
        return NumpyColumn("f", np.full(length, value, np.float64))
    elif vtype is bool:
        return NumpyColumn("b", np.full(length, value, np.bool_))
    elif vtype is datetime.date:
        return NumpyColumn("d", np.full(length, value.toordinal(),
                                        np.int64))
    arr = np.empty(length, dtype=object)
    arr[:] = value
    return NumpyColumn("o", arr)


class ArrayBatch:
    """One columnar fragment over :class:`NumpyColumn` columns.

    ``length`` is authoritative (zero-column batches with positive row
    counts exist, as for :class:`ColumnBatch`).  ``list_batch()`` lazily
    materializes the native-list twin once per batch — the per-
    expression fallback path hands it to the pure-Python kernels, so a
    batch pays the conversion only if some expression actually needs
    it, and at most once however many expressions do.
    """

    __slots__ = ("columns", "length", "_list_batch")

    def __init__(self, columns: Dict[int, NumpyColumn], length: int):
        self.columns = columns
        self.length = length
        self._list_batch: Optional[ColumnBatch] = None

    def list_batch(self) -> ColumnBatch:
        batch = self._list_batch
        if batch is None:
            batch = ColumnBatch(
                {cid: col.pylist() for cid, col in self.columns.items()},
                self.length)
            self._list_batch = batch
        return batch

    def take(self, indices: np.ndarray,
             ids: Optional[Iterable[int]] = None) -> "ArrayBatch":
        columns = self.columns
        if ids is None:
            items = columns.items()
        else:
            items = [(cid, columns[cid]) for cid in ids if cid in columns]
        return ArrayBatch(
            {cid: col.take(indices) for cid, col in items},
            len(indices))

    def compress(self, keep: np.ndarray,
                 ids: Optional[Iterable[int]] = None) -> "ArrayBatch":
        """Keep the rows where boolean ``keep`` is True."""
        columns = self.columns
        if ids is None:
            items = columns.items()
        else:
            items = [(cid, columns[cid]) for cid in ids if cid in columns]
        length = int(keep.sum())
        return ArrayBatch(
            {cid: col.compress(keep) for cid, col in items}, length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ArrayBatch(rows={self.length}, "
                f"columns={sorted(self.columns)})")


def from_column_batch(batch: ColumnBatch) -> ArrayBatch:
    """Sniff every column of a list batch into typed arrays."""
    return ArrayBatch(
        {cid: column_from_list(col)
         for cid, col in batch.columns.items()},
        batch.length)


# -- vectorized pdw_hash ---------------------------------------------------------

def _crc32_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for i in range(256):
        c = i
        for _ in range(8):
            c = (0xEDB88320 ^ (c >> 1)) if (c & 1) else (c >> 1)
        table[i] = c
    return table


_CRC32_TABLE = _crc32_table()


def crc32_int64(values: np.ndarray) -> np.ndarray:
    """``zlib.crc32(v.to_bytes(16, "little", signed=True))`` for a whole
    int64 column at once — bit-identical to
    :func:`repro.appliance.storage.pdw_hash` on ints (int64 values
    occupy the low 8 bytes; the high 8 are the sign extension).

    Table-driven CRC-32: sixteen byte positions processed in sequence,
    each position vectorized across every row.
    """
    v = np.ascontiguousarray(values, dtype=np.int64)
    data = v.astype("<i8").view(np.uint8).reshape(-1, 8)
    sign = np.where(v < 0, np.uint8(0xFF), np.uint8(0))
    crc = np.full(len(v), 0xFFFFFFFF, dtype=np.uint32)
    eight = np.uint32(8)
    low_byte = np.uint32(0xFF)
    for position in range(8):
        crc = (_CRC32_TABLE[(crc ^ data[:, position]) & low_byte]
               ^ (crc >> eight))
    for _ in range(8):  # sign-extension bytes are uniform per row
        crc = _CRC32_TABLE[(crc ^ sign) & low_byte] ^ (crc >> eight)
    return crc ^ np.uint32(0xFFFFFFFF)


def int_key_owners(keys: Sequence,
                   node_count: int) -> Optional[np.ndarray]:
    """Owner node per key for a pure-``int`` key column, hashing the
    whole column in one vectorized pass; ``None`` when the column is
    not all native ``int`` (or exceeds int64), in which case the caller
    falls back to per-value ``pdw_hash``."""
    if set(map(type, keys)) != {int}:
        return None
    try:
        values = np.array(keys, dtype=np.int64)
    except OverflowError:
        return None
    return (crc32_int64(values) % np.uint32(node_count)).astype(np.int64)
