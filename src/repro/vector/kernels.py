"""Vectorized compilation of bound scalar expressions into column kernels.

Where :mod:`repro.algebra.compiler` turns a ``ScalarExpr`` tree into a
closure ``env -> value`` applied once per row, this module turns the
same tree into a *kernel* ``ColumnBatch -> column`` applied once per
batch: the interpreter overhead (dispatch, attribute traffic, frame
setup) is paid per column instead of per row, and the inner loops are
list comprehensions over whole columns.

Semantics are the row backends' semantics, by construction:

* SQL three-valued logic — NULL (``None``) operands propagate through
  comparisons/arithmetic, AND/OR follow Kleene semantics;
* short-circuit parity via **selection-vector narrowing** — AND/OR
  evaluate argument ``k`` only on the rows still undecided after
  argument ``k-1``, and CASE evaluates each WHEN condition (and its
  result) only on rows no earlier arm claimed, so a guarded expression
  like ``x <> 0 AND 10 / x > 1`` never divides on the rows the guard
  excluded — exactly the rows the row backends never evaluate it on;
* error behaviour matches — missing columns raise
  :class:`~repro.algebra.evaluator.UnboundColumn`, division by zero
  raises :class:`ExecutionError` at batch-evaluation time, never at
  compile time.  (One documented divergence: when *different operands*
  of one expression would each error on *different rows*, the vectorized
  backend evaluates column-major and may surface the other operand's
  error first.  The error type and message are the same; only which of
  several simultaneous errors wins can differ.  DESIGN §5 discusses
  this.)

LIKE patterns compile to regexes and IN lists to hash sets once per
kernel.  Kernels are memoized per expression *identity* (same rationale
and same bounded-cache shape as the closure compiler's memo), so a
cached step's bound tree re-run on every compute node compiles each
expression exactly once.
"""

from __future__ import annotations

import operator
import threading
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra.evaluator import (
    UnboundColumn,
    _cast,
    _like_regex,
    apply_scalar_function,
)
from repro.common.errors import ExecutionError
from repro.vector.column_batch import ColumnBatch

#: A kernel: one output value per input row, ``None`` for NULL.
Kernel = Callable[[ColumnBatch], List]

_COMPARISONS: Dict[str, Callable] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_PLAIN_ARITHMETIC: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

# Identity-keyed memo, mirroring repro.algebra.compiler._CACHE: value
# equality would conflate Constant(0) with Constant(False), entries pin
# their key expression so a live id cannot be reused, and the cache is
# bounded and lock-guarded for the parallel runtime's node workers.
_CACHE: Dict[int, Tuple[ex.ScalarExpr, Kernel]] = {}
_CACHE_LIMIT = 8192
_CACHE_LOCK = threading.RLock()


def compile_kernel(expr: ex.ScalarExpr) -> Kernel:
    """Compile ``expr`` into a kernel ``batch -> column``.  Thread-safe."""
    key = id(expr)
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
        if entry is not None and entry[0] is expr:
            return entry[1]
        fn = _compile(expr)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = (expr, fn)
        return fn


def compile_selection(expr: Optional[ex.ScalarExpr]
                      ) -> Callable[[ColumnBatch], List[int]]:
    """Compile a predicate into ``batch -> selection vector``: the
    indices of rows where the predicate is True (NULL counts as False,
    as in the row backends' ``is True`` filter)."""
    if expr is None:
        return lambda batch: list(range(batch.length))
    kernel = compile_kernel(expr)

    def select(batch: ColumnBatch) -> List[int]:
        return [i for i, value in enumerate(kernel(batch))
                if value is True]

    return select


def clear_kernel_cache() -> None:
    """Drop all memoized kernels (tests / memory pressure)."""
    with _CACHE_LOCK:
        _CACHE.clear()


# -- node compilers --------------------------------------------------------------


def _compile(expr: ex.ScalarExpr) -> Kernel:
    if isinstance(expr, ex.Constant):
        value = expr.value
        return lambda batch: [value] * batch.length

    if isinstance(expr, ex.ColumnVar):
        var_id = expr.id

        def load_column(batch):
            try:
                return batch.columns[var_id]
            except KeyError:
                raise UnboundColumn(var_id) from None

        return load_column

    if isinstance(expr, ex.Comparison):
        return _compile_comparison(expr)

    if isinstance(expr, ex.Arithmetic):
        return _compile_arithmetic(expr)

    if isinstance(expr, ex.BoolOp):
        return _compile_bool_op(expr)

    if isinstance(expr, ex.NotExpr):
        operand = compile_kernel(expr.operand)
        return lambda batch: [
            None if value is None else (not value)
            for value in operand(batch)
        ]

    if isinstance(expr, ex.LikeExpr):
        return _compile_like(expr)

    if isinstance(expr, ex.InListExpr):
        return _compile_in_list(expr)

    if isinstance(expr, ex.IsNullExpr):
        operand = compile_kernel(expr.operand)
        if expr.negated:
            return lambda batch: [value is not None
                                  for value in operand(batch)]
        return lambda batch: [value is None for value in operand(batch)]

    if isinstance(expr, ex.CastExpr):
        operand = compile_kernel(expr.operand)
        kind = expr.target.kind
        return lambda batch: [_cast(value, kind)
                              for value in operand(batch)]

    if isinstance(expr, ex.CaseWhen):
        return _compile_case(expr)

    if isinstance(expr, ex.FuncExpr):
        return _compile_function(expr)

    if isinstance(expr, ex.AggExpr):
        return _raising("aggregate evaluated outside GroupBy")

    return _raising(f"cannot evaluate {type(expr).__name__}")


def _raising(message: str) -> Kernel:
    def fail(batch):
        raise ExecutionError(message)

    return fail


def _compile_comparison(expr: ex.Comparison) -> Kernel:
    compare = _COMPARISONS.get(expr.op)
    if compare is None:
        return _raising(f"unknown comparison {expr.op}")

    left_is_const = isinstance(expr.left, ex.Constant)
    right_is_const = isinstance(expr.right, ex.Constant)

    if (isinstance(expr.left, ex.ColumnVar)
            and isinstance(expr.right, ex.ColumnVar)):
        left_id = expr.left.id
        right_id = expr.right.id

        def compare_columns(batch):
            columns = batch.columns
            try:
                left_col = columns[left_id]
                right_col = columns[right_id]
            except KeyError as exc:
                raise UnboundColumn(exc.args[0]) from None
            return [
                None if lv is None or rv is None else compare(lv, rv)
                for lv, rv in zip(left_col, right_col)
            ]

        return compare_columns

    if right_is_const and not left_is_const:
        constant = expr.right.value
        left = compile_kernel(expr.left)
        if constant is None:
            # The non-constant side still evaluates (UnboundColumn /
            # error parity); the result is uniformly NULL.
            def left_then_null(batch):
                left(batch)
                return [None] * batch.length

            return left_then_null

        return lambda batch: [
            None if value is None else compare(value, constant)
            for value in left(batch)
        ]

    if left_is_const and not right_is_const:
        constant = expr.left.value
        right = compile_kernel(expr.right)
        if constant is None:

            def right_then_null(batch):
                right(batch)
                return [None] * batch.length

            return right_then_null

        return lambda batch: [
            None if value is None else compare(constant, value)
            for value in right(batch)
        ]

    left = compile_kernel(expr.left)
    right = compile_kernel(expr.right)

    def comparison(batch):
        left_col = left(batch)
        right_col = right(batch)
        return [
            None if lv is None or rv is None else compare(lv, rv)
            for lv, rv in zip(left_col, right_col)
        ]

    return comparison


def _compile_arithmetic(expr: ex.Arithmetic) -> Kernel:
    apply = _PLAIN_ARITHMETIC.get(expr.op)
    if apply is not None:
        # Constant-operand fusion for + - * (``1 - l_discount`` et al.).
        if (isinstance(expr.right, ex.Constant)
                and expr.right.value is not None
                and not isinstance(expr.left, ex.Constant)):
            constant = expr.right.value
            left = compile_kernel(expr.left)
            return lambda batch: [
                None if value is None else apply(value, constant)
                for value in left(batch)
            ]

        if (isinstance(expr.left, ex.Constant)
                and expr.left.value is not None
                and not isinstance(expr.right, ex.Constant)):
            constant = expr.left.value
            right = compile_kernel(expr.right)
            return lambda batch: [
                None if value is None else apply(constant, value)
                for value in right(batch)
            ]

    left = compile_kernel(expr.left)
    right = compile_kernel(expr.right)
    if apply is not None:

        def arithmetic(batch):
            left_col = left(batch)
            right_col = right(batch)
            return [
                None if lv is None or rv is None else apply(lv, rv)
                for lv, rv in zip(left_col, right_col)
            ]

        return arithmetic

    if expr.op in ("/", "%"):
        modulo = expr.op == "%"

        def divide(batch):
            left_col = left(batch)
            right_col = right(batch)
            out = []
            append = out.append
            for lv, rv in zip(left_col, right_col):
                if lv is None or rv is None:
                    append(None)
                elif rv == 0:
                    raise ExecutionError("division by zero")
                elif modulo:
                    append(lv % rv)
                else:
                    append(lv / rv)
            return out

        return divide

    if expr.op == "||":

        def concat(batch):
            left_col = left(batch)
            right_col = right(batch)
            return [
                None if lv is None or rv is None else str(lv) + str(rv)
                for lv, rv in zip(left_col, right_col)
            ]

        return concat

    return _raising(f"unknown arithmetic operator {expr.op}")


def _suffix_columns(args: Tuple[ex.ScalarExpr, ...]) -> List[FrozenSet[int]]:
    """``suffix[k]`` = column ids any of ``args[k:]`` reads — what a
    narrowed sub-batch must carry before evaluating argument ``k``."""
    suffixes: List[FrozenSet[int]] = []
    acc: FrozenSet[int] = frozenset()
    for arg in reversed(args):
        acc = acc | arg.columns_used()
        suffixes.append(acc)
    suffixes.reverse()
    return suffixes


def _compile_bool_op(expr: ex.BoolOp) -> Kernel:
    kernels = [compile_kernel(arg) for arg in expr.args]
    suffixes = _suffix_columns(expr.args)
    # AND decides on False, OR on True; a non-decisive non-NULL value
    # leaves the running Kleene state (the complement) unchanged, NULL
    # turns it to NULL.  Rows keep evaluating later arguments until
    # decided — exactly the row backends' loop, which only early-exits
    # on the decisive value.
    decisive = expr.op != "AND"

    def bool_op(batch):
        first = kernels[0](batch)
        result: List = []
        append = result.append
        active: List[int] = []
        activate = active.append
        for i, value in enumerate(first):
            if value is decisive:
                append(decisive)
            else:
                append(None if value is None else (not decisive))
                activate(i)
        for position in range(1, len(kernels)):
            if not active:
                break
            if len(active) == batch.length:
                sub = batch
            else:
                sub = batch.take(active, suffixes[position])
            values = kernels[position](sub)
            still: List[int] = []
            keep = still.append
            for j, i in enumerate(active):
                value = values[j]
                if value is decisive:
                    result[i] = decisive
                else:
                    if value is None:
                        result[i] = None
                    keep(i)
            active = still
        return result

    return bool_op


def _compile_like(expr: ex.LikeExpr) -> Kernel:
    operand = compile_kernel(expr.operand)
    match = _like_regex(expr.pattern).match
    negated = expr.negated

    def like(batch):
        out = []
        append = out.append
        for value in operand(batch):
            if value is None:
                append(None)
            else:
                matched = match(str(value)) is not None
                append((not matched) if negated else matched)
        return out

    return like


def _compile_in_list(expr: ex.InListExpr) -> Kernel:
    operand = compile_kernel(expr.operand)
    negated = expr.negated
    values = expr.values
    try:
        table = frozenset(values)
    except TypeError:  # unhashable literal — keep the linear scan
        table = None

    if table is not None:

        def in_set(batch):
            out = []
            append = out.append
            for value in operand(batch):
                if value is None:
                    append(None)
                    continue
                try:
                    found = value in table
                except TypeError:  # unhashable probe value
                    found = value in values
                append((not found) if negated else found)
            return out

        return in_set

    def in_tuple(batch):
        out = []
        append = out.append
        for value in operand(batch):
            if value is None:
                append(None)
            else:
                found = value in values
                append((not found) if negated else found)
        return out

    return in_tuple


def _compile_case(expr: ex.CaseWhen) -> Kernel:
    whens = [
        (compile_kernel(condition), condition.columns_used(),
         compile_kernel(result), result.columns_used())
        for condition, result in expr.whens
    ]
    if expr.otherwise is not None:
        otherwise = compile_kernel(expr.otherwise)
        otherwise_cols = expr.otherwise.columns_used()
    else:
        otherwise = None
        otherwise_cols = frozenset()

    def case(batch):
        length = batch.length
        result: List = [None] * length
        active = list(range(length))
        for cond_kernel, cond_cols, res_kernel, res_cols in whens:
            if not active:
                break
            sub = (batch if len(active) == length
                   else batch.take(active, cond_cols))
            cond_values = cond_kernel(sub)
            taken: List[int] = []
            rest: List[int] = []
            for j, i in enumerate(active):
                (taken if cond_values[j] is True else rest).append(i)
            if taken:
                res_sub = (batch if len(taken) == length
                           else batch.take(taken, res_cols))
                res_values = res_kernel(res_sub)
                for j, i in enumerate(taken):
                    result[i] = res_values[j]
            active = rest
        if otherwise is not None and active:
            sub = (batch if len(active) == length
                   else batch.take(active, otherwise_cols))
            values = otherwise(sub)
            for j, i in enumerate(active):
                result[i] = values[j]
        return result

    return case


def _compile_function(expr: ex.FuncExpr) -> Kernel:
    kernels = [compile_kernel(arg) for arg in expr.args]
    name = expr.name.upper()

    if not kernels:
        return lambda batch: [
            apply_scalar_function(name, [])
            for _ in range(batch.length)
        ]

    def call(batch):
        columns = [kernel(batch) for kernel in kernels]
        out = []
        append = out.append
        for values in zip(*columns):
            if any(value is None for value in values):
                append(None)
            else:
                append(apply_scalar_function(name, list(values)))
        return out

    return call
