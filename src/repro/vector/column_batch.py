"""Columnar row fragments for the vectorized executor.

A :class:`ColumnBatch` is the unit of data flowing between vectorized
operators: a mapping from bound column-variable id to one Python
sequence per column, plus the row count.  Columns may be lists *or*
tuples (scans transpose storage tuples at C speed), and batches are
treated as immutable — operators that keep rows build new batches (or
alias whole columns, which is safe for the same reason the row
backends may share env dicts through identity projections: nothing
downstream mutates them).

Row order is meaningful: position ``i`` across all columns is row
``i``, and operators preserve the same row order the row-at-a-time
interpreters produce, so the three backends are comparable
row-for-row, not merely as multisets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: A column: one value per row, ``None`` for NULL.  Lists and tuples
#: both appear; consumers only index and iterate.
Column = Sequence


class ColumnBatch:
    """One columnar fragment: ``columns[var_id][i]`` is row ``i``'s value.

    ``length`` is authoritative — a batch can have zero columns but a
    positive row count (e.g. a scan that feeds only ``COUNT(*)``), which
    mirrors the row backends' empty per-row env dicts.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Dict[int, Column], length: int):
        self.columns = columns
        self.length = length

    def take(self, indices: List[int],
             ids: Optional[Iterable[int]] = None) -> "ColumnBatch":
        """Gather rows ``indices`` (a selection vector) into a new batch.

        ``ids`` restricts the gather to those column ids — the kernel
        narrowing paths use it so a short-circuited sub-expression pays
        only for the columns it actually reads.  Ids absent from the
        batch are skipped, preserving the row backends' "unbound column
        raises at reference time" behaviour.
        """
        columns = self.columns
        if ids is None:
            items = columns.items()
        else:
            items = [(cid, columns[cid]) for cid in ids if cid in columns]
        return ColumnBatch(
            {cid: [col[i] for i in indices] for cid, col in items},
            len(indices))

    def row(self, i: int) -> Dict[int, object]:
        """Row ``i`` as an env dict (diagnostics / differential tests)."""
        return {cid: col[i] for cid, col in self.columns.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnBatch(rows={self.length}, "
                f"columns={sorted(self.columns)})")
