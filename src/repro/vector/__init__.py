"""Vectorized columnar execution backends (the third and fourth
executors).

DSQL step SQL runs batch-at-a-time over columnar fragments: a
:class:`~repro.vector.column_batch.ColumnBatch` holds one Python list
per column, scalar expressions compile into column kernels
(:mod:`repro.vector.kernels`) that evaluate a whole column per call with
selection-vector narrowing for short-circuit semantics, and
:class:`~repro.vector.executor.VectorInterpreter` mirrors the row
interpreters' operator semantics (including stats counters and the
profiler observer protocol) while touching rows only at the
storage boundary.

The numpy backend (:mod:`repro.vector.np_batch`,
:mod:`repro.vector.np_kernels`, :mod:`repro.vector.np_executor`) keeps
the same operator semantics but stores columns as typed ndarrays with
explicit NULL masks, so kernels and aggregates run inside numpy's C
loops — which release the GIL, letting the parallel node runtime
overlap real work.  Its names are exported here only when numpy is
importable; everything else in this package stays pure-Python, so
``executor="numpy"`` can degrade gracefully to ``"vectorized"``.

Selected with ``ExecutionOptions(executor="vectorized")`` or
``executor="numpy"`` alongside the ``"reference"`` tree-walking
interpreter and the ``"compiled"`` closure backend.
"""

from repro.common.executors import numpy_available
from repro.vector.column_batch import ColumnBatch
from repro.vector.executor import VectorInterpreter
from repro.vector.kernels import (
    clear_kernel_cache,
    compile_kernel,
    compile_selection,
)

__all__ = [
    "ColumnBatch",
    "VectorInterpreter",
    "clear_kernel_cache",
    "compile_kernel",
    "compile_selection",
]

if numpy_available():
    from repro.vector.np_batch import ArrayBatch, NumpyColumn
    from repro.vector.np_executor import NumpyInterpreter
    from repro.vector.np_kernels import (
        clear_np_kernel_cache,
        compile_np_kernel,
        compile_np_selection,
    )

    __all__ += [
        "ArrayBatch",
        "NumpyColumn",
        "NumpyInterpreter",
        "clear_np_kernel_cache",
        "compile_np_kernel",
        "compile_np_selection",
    ]
