"""Vectorized columnar execution backend (the third executor).

DSQL step SQL runs batch-at-a-time over columnar fragments: a
:class:`~repro.vector.column_batch.ColumnBatch` holds one Python list
per column, scalar expressions compile into column kernels
(:mod:`repro.vector.kernels`) that evaluate a whole column per call with
selection-vector narrowing for short-circuit semantics, and
:class:`~repro.vector.executor.VectorInterpreter` mirrors the row
interpreters' operator semantics (including stats counters and the
profiler observer protocol) while touching rows only at the
storage boundary.

Selected with ``ExecutionOptions(executor="vectorized")`` alongside the
``"reference"`` tree-walking interpreter and the ``"compiled"``
closure backend.
"""

from repro.vector.column_batch import ColumnBatch
from repro.vector.executor import VectorInterpreter
from repro.vector.kernels import (
    clear_kernel_cache,
    compile_kernel,
    compile_selection,
)

__all__ = [
    "ColumnBatch",
    "VectorInterpreter",
    "clear_kernel_cache",
    "compile_kernel",
    "compile_selection",
]
