"""Numpy compilation of bound scalar expressions into array kernels.

The numpy twin of :mod:`repro.vector.kernels`: the same ``ScalarExpr``
tree compiles into a kernel ``ArrayBatch -> NumpyColumn`` whose inner
loops are ufunc calls over typed arrays — C loops that release the GIL,
which is what lets the parallel node runtime scale.

Semantics are the row backends' semantics, enforced two ways:

* **runtime dtype dispatch** — every operator looks at the column
  kinds it actually received and takes the ufunc fast path only when
  it is provably bit-identical to the Python semantics (e.g. an
  int64/float64 mixed comparison vectorizes only while the int side
  fits in 2^53, because Python compares int-to-float exactly and
  float64 promotion does not); otherwise it evaluates elementwise over
  the columns' native-value views, which *is* the list kernel's loop;
* **masked narrowing** — AND/OR arguments and CASE arms evaluate only
  on the rows still undecided, by compressing the batch with the
  active boolean mask before each step.  This is the array form of the
  list kernels' selection-vector narrowing, and it preserves
  short-circuit parity: a guarded ``x <> 0 AND 10 / x > 1`` never
  divides on excluded rows.

Three-valued logic travels in the explicit NULL mask
(:class:`~repro.vector.np_batch.NumpyColumn`), so NULL propagation is
one mask OR per binary operator.  Division by zero checks
``(divisor == 0) & ~null`` over the whole column and raises the same
:class:`ExecutionError` before computing anything.  Expressions with
no profitable array form (LIKE, ``||``, scalar functions, string
casts) delegate to the pure-Python list kernel over the batch's cached
native-list view — parity by construction, at worst the old speed.

Kernels are memoized per expression identity with the same bounded
cache shape as the other compilers.
"""

from __future__ import annotations

import datetime
import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.algebra import expressions as ex
from repro.algebra.evaluator import UnboundColumn, _cast
from repro.common.errors import ExecutionError
from repro.common.types import TypeKind
from repro.vector.kernels import (
    _COMPARISONS,
    _PLAIN_ARITHMETIC,
    _suffix_columns,
    compile_kernel,
)
from repro.vector.np_batch import (
    ArrayBatch,
    NumpyColumn,
    column_from_list,
    const_column,
)

#: A numpy kernel: one typed output column per input batch.
NKernel = Callable[[ArrayBatch], NumpyColumn]

_COMPARE_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITH_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply}

#: Largest int magnitude exactly representable as float64 — the bound
#: under which int↔float promotion loses nothing.
_EXACT_FLOAT_INT = 2 ** 53

# Identity-keyed memo; same rationale and shape as kernels._CACHE.
_CACHE: Dict[int, Tuple[ex.ScalarExpr, NKernel]] = {}
_CACHE_LIMIT = 8192
_CACHE_LOCK = threading.RLock()


def compile_np_kernel(expr: ex.ScalarExpr) -> NKernel:
    """Compile ``expr`` into a kernel ``ArrayBatch -> NumpyColumn``.
    Thread-safe."""
    key = id(expr)
    with _CACHE_LOCK:
        entry = _CACHE.get(key)
        if entry is not None and entry[0] is expr:
            return entry[1]
        fn = _compile(expr)
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        _CACHE[key] = (expr, fn)
        return fn


def compile_np_selection(expr: Optional[ex.ScalarExpr]
                         ) -> Callable[[ArrayBatch], np.ndarray]:
    """Compile a predicate into ``batch -> keep mask``: a boolean array
    that is True exactly where the predicate value ``is True`` (NULL
    counts as False, as in the row backends' filter)."""
    if expr is None:
        return lambda batch: np.ones(batch.length, dtype=np.bool_)
    kernel = compile_np_kernel(expr)
    return lambda batch: kernel(batch).is_true_mask()


def clear_np_kernel_cache() -> None:
    """Drop all memoized numpy kernels (tests / memory pressure)."""
    with _CACHE_LOCK:
        _CACHE.clear()


# -- helpers ---------------------------------------------------------------------


def _merge_masks(left: Optional[np.ndarray],
                 right: Optional[np.ndarray]) -> Optional[np.ndarray]:
    if left is None:
        return right
    if right is None:
        return left
    return left | right


def _list_fallback(expr: ex.ScalarExpr) -> NKernel:
    """Run the pure-Python list kernel over the batch's native view —
    exact parity by construction (including narrowing and errors)."""
    kernel = compile_kernel(expr)

    def run(batch: ArrayBatch) -> NumpyColumn:
        return column_from_list(kernel(batch.list_batch()))

    return run


def _raising(message: str) -> NKernel:
    def fail(batch):
        raise ExecutionError(message)

    return fail


def _int_exceeds_exact_float(column: NumpyColumn) -> bool:
    values = column.values
    if not len(values):
        return False
    return max(abs(int(values.min())),
               abs(int(values.max()))) > _EXACT_FLOAT_INT


def _int_bounds(column: NumpyColumn) -> Tuple[int, int]:
    values = column.values
    if not len(values):
        return 0, 0
    return int(values.min()), int(values.max())


# -- node compilers --------------------------------------------------------------


def _compile(expr: ex.ScalarExpr) -> NKernel:
    if isinstance(expr, ex.Constant):
        value = expr.value
        return lambda batch: const_column(value, batch.length)

    if isinstance(expr, ex.ColumnVar):
        var_id = expr.id

        def load_column(batch):
            try:
                return batch.columns[var_id]
            except KeyError:
                raise UnboundColumn(var_id) from None

        return load_column

    if isinstance(expr, ex.Comparison):
        return _compile_comparison(expr)

    if isinstance(expr, ex.Arithmetic):
        return _compile_arithmetic(expr)

    if isinstance(expr, ex.BoolOp):
        return _compile_bool_op(expr)

    if isinstance(expr, ex.NotExpr):
        return _compile_not(expr)

    if isinstance(expr, ex.InListExpr):
        return _compile_in_list(expr)

    if isinstance(expr, ex.IsNullExpr):
        operand = compile_np_kernel(expr.operand)
        negated = expr.negated

        def is_null(batch):
            nulls = operand(batch).null_mask()
            return NumpyColumn("b", ~nulls if negated else nulls)

        return is_null

    if isinstance(expr, ex.CastExpr):
        return _compile_cast(expr)

    if isinstance(expr, ex.CaseWhen):
        return _compile_case(expr)

    if isinstance(expr, ex.AggExpr):
        return _raising("aggregate evaluated outside GroupBy")

    if isinstance(expr, (ex.LikeExpr, ex.FuncExpr)):
        # Regex matching and scalar-function dispatch are per-value
        # Python work either way — reuse the list kernel verbatim.
        return _list_fallback(expr)

    return _list_fallback(expr)


# -- comparison ------------------------------------------------------------------


def _compile_comparison(expr: ex.Comparison) -> NKernel:
    compare = _COMPARISONS.get(expr.op)
    if compare is None:
        return _raising(f"unknown comparison {expr.op}")
    ufunc = _COMPARE_UFUNCS[expr.op]

    for side, other in ((expr.left, expr.right),
                        (expr.right, expr.left)):
        if (isinstance(side, ex.Constant) and side.value is None
                and not isinstance(other, ex.Constant)):
            # NULL-constant comparison: the other side still evaluates
            # (UnboundColumn / error parity); the result is all-NULL.
            operand = compile_np_kernel(other)

            def evaluate_then_null(batch, operand=operand):
                operand(batch)
                length = batch.length
                return NumpyColumn(
                    "b", np.zeros(length, dtype=np.bool_),
                    np.ones(length, dtype=np.bool_))

            return evaluate_then_null

    left = compile_np_kernel(expr.left)
    right = compile_np_kernel(expr.right)

    def comparison(batch):
        lc = left(batch)
        rc = right(batch)
        lk, rk = lc.kind, rc.kind
        fast = False
        if lk == rk and lk in "ifbd":
            fast = True
        elif lk in "ifb" and rk in "ifb":
            # Mixed numeric: float64 promotion is exact only while the
            # int side fits 2^53 (Python compares int↔float exactly).
            fast = not (
                (lk == "i" and rk == "f"
                 and _int_exceeds_exact_float(lc))
                or (rk == "i" and lk == "f"
                    and _int_exceeds_exact_float(rc)))
        if fast:
            values = ufunc(lc.values, rc.values)
            return NumpyColumn("b", values,
                               _merge_masks(lc.mask, rc.mask))
        return column_from_list([
            None if lv is None or rv is None else compare(lv, rv)
            for lv, rv in zip(lc.pylist(), rc.pylist())
        ])

    return comparison


# -- arithmetic ------------------------------------------------------------------


def _int64_addition_safe(lc: NumpyColumn, rc: NumpyColumn) -> bool:
    llo, lhi = _int_bounds(lc)
    rlo, rhi = _int_bounds(rc)
    bound = 2 ** 62
    return (max(abs(llo), abs(lhi)) + max(abs(rlo), abs(rhi))) < bound


def _int64_product_safe(lc: NumpyColumn, rc: NumpyColumn) -> bool:
    llo, lhi = _int_bounds(lc)
    rlo, rhi = _int_bounds(rc)
    return (max(abs(llo), abs(lhi))
            * max(abs(rlo), abs(rhi))) < 2 ** 62


def _as_float_operand(column: NumpyColumn) -> Optional[np.ndarray]:
    """The column as a float64 operand with Python's mixed-arithmetic
    semantics (ints/bools convert to float64, exactly as Python
    promotes them), or ``None`` when no exact conversion exists."""
    if column.kind == "f":
        return column.values
    if column.kind in "ib":
        return column.values.astype(np.float64)
    return None


def _compile_arithmetic(expr: ex.Arithmetic) -> NKernel:
    op = expr.op
    left = compile_np_kernel(expr.left)
    right = compile_np_kernel(expr.right)

    if op in _PLAIN_ARITHMETIC:
        apply = _PLAIN_ARITHMETIC[op]
        ufunc = _ARITH_UFUNCS[op]
        product = op == "*"

        def arithmetic(batch):
            lc = left(batch)
            rc = right(batch)
            lk, rk = lc.kind, rc.kind
            if lk in "ib" and rk in "ib":
                safe = (_int64_product_safe(lc, rc) if product
                        else _int64_addition_safe(lc, rc))
                if safe:
                    # bool operands promote to int (True + True == 2).
                    lv = (lc.values if lk == "i"
                          else lc.values.astype(np.int64))
                    rv = (rc.values if rk == "i"
                          else rc.values.astype(np.int64))
                    return NumpyColumn("i", ufunc(lv, rv),
                                       _merge_masks(lc.mask, rc.mask))
            elif "f" in (lk, rk):
                lv = _as_float_operand(lc)
                rv = _as_float_operand(rc)
                if lv is not None and rv is not None:
                    return NumpyColumn("f", ufunc(lv, rv),
                                       _merge_masks(lc.mask, rc.mask))
            return column_from_list([
                None if lv is None or rv is None else apply(lv, rv)
                for lv, rv in zip(lc.pylist(), rc.pylist())
            ])

        return arithmetic

    if op in ("/", "%"):
        modulo = op == "%"

        def divide(batch):
            lc = left(batch)
            rc = right(batch)
            nulls = _merge_masks(lc.mask, rc.mask)
            lv = _as_float_operand(lc)
            rv = _as_float_operand(rc)
            int_int = lc.kind in "ib" and rc.kind in "ib"
            fast = lv is not None and rv is not None
            if fast and not int_int and (lc.kind == "i" or rc.kind == "i"):
                # int↔float promotion: exact only within 2^53.
                fast = not any(
                    c.kind == "i" and _int_exceeds_exact_float(c)
                    for c in (lc, rc))
            if fast and int_int and not modulo:
                # int / int still true-divides through float64; both
                # operands must be exactly representable.
                fast = not any(_int_exceeds_exact_float(c)
                               for c in (lc, rc))
            if fast and modulo and "f" in (lc.kind, rc.kind):
                # Non-finite float modulo has fiddly sign rules; let
                # Python decide those rare rows.
                fast = bool(np.isfinite(lv).all()
                            and np.isfinite(rv).all())
            if fast:
                zero = rv == 0
                if nulls is not None:
                    zero = zero & ~nulls
                if zero.any():
                    raise ExecutionError("division by zero")
                if modulo and int_int:
                    divisor = rc.values.astype(np.int64)
                    # NULL rows carry the 0 fill; dodge the spurious
                    # divide warning (the result is masked anyway).
                    divisor = np.where(divisor == 0, 1, divisor)
                    values = np.remainder(lc.values.astype(np.int64),
                                          divisor)
                    return NumpyColumn("i", values, nulls)
                safe_rv = np.where(rv == 0, 1.0, rv)
                values = (np.remainder(lv, safe_rv) if modulo
                          else np.true_divide(lv, safe_rv))
                return NumpyColumn("f", values, nulls)
            out = []
            append = out.append
            for lval, rval in zip(lc.pylist(), rc.pylist()):
                if lval is None or rval is None:
                    append(None)
                elif rval == 0:
                    raise ExecutionError("division by zero")
                elif modulo:
                    append(lval % rval)
                else:
                    append(lval / rval)
            return column_from_list(out)

        return divide

    if op == "||":
        return _list_fallback(expr)

    return _raising(f"unknown arithmetic operator {op}")


# -- boolean logic ---------------------------------------------------------------


def _kleene_state(column: NumpyColumn, decisive: bool
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """``(decided, null)`` masks for one AND/OR argument column, under
    the row backends' identity test: only the exact Python bool
    ``decisive`` decides, NULL stays NULL, any other value leaves the
    running state unchanged."""
    if column.kind == "b":
        nulls = column.null_mask()
        decided = ((column.values if decisive else ~column.values)
                   & ~nulls)
        return decided, nulls
    if column.kind == "o":
        n = len(column.values)
        decided = np.fromiter((v is decisive for v in column.values),
                              np.bool_, n)
        nulls = np.fromiter((v is None for v in column.values),
                            np.bool_, n)
        return decided, nulls
    return np.zeros(len(column.values), dtype=np.bool_), \
        column.null_mask()


def _compile_bool_op(expr: ex.BoolOp) -> NKernel:
    kernels = [compile_np_kernel(arg) for arg in expr.args]
    suffixes = _suffix_columns(expr.args)
    decisive = expr.op != "AND"

    def bool_op(batch):
        first = kernels[0](batch)
        decided, nulls = _kleene_state(first, decisive)
        values = np.where(decided, decisive, not decisive)
        null_out = nulls.copy()
        active = ~decided
        for position in range(1, len(kernels)):
            if not active.any():
                break
            if active.all():
                sub = batch
            else:
                sub = batch.compress(active, suffixes[position])
            col = kernels[position](sub)
            decided_sub, nulls_sub = _kleene_state(col, decisive)
            indices = np.flatnonzero(active)
            hit = indices[decided_sub]
            values[hit] = decisive
            null_out[hit] = False
            active[hit] = False
            # NULL at an undecided position turns the state NULL but
            # keeps the row active; non-decisive non-NULL leaves the
            # state untouched — exactly the list kernel's loop.
            null_hit = indices[nulls_sub & ~decided_sub]
            null_out[null_hit] = True
        return NumpyColumn("b", values,
                           null_out if null_out.any() else None)

    return bool_op


def _compile_not(expr: ex.NotExpr) -> NKernel:
    operand = compile_np_kernel(expr.operand)

    def negate(batch):
        col = operand(batch)
        kind = col.kind
        if kind == "b":
            return NumpyColumn("b", ~col.values, col.mask)
        if kind in "if":
            # Python truthiness: ``not x`` is ``x == 0`` for numbers
            # (NaN compares unequal to 0, and ``not nan`` is False —
            # they agree).
            return NumpyColumn("b", col.values == 0, col.mask)
        if kind == "d":
            return NumpyColumn(
                "b", np.zeros(len(col.values), dtype=np.bool_),
                col.mask)
        return column_from_list([
            None if value is None else (not value)
            for value in col.pylist()
        ])

    return negate


# -- IN lists --------------------------------------------------------------------


def _compile_in_list(expr: ex.InListExpr) -> NKernel:
    operand = compile_np_kernel(expr.operand)
    negated = expr.negated
    values = expr.values
    numeric_table = [v for v in values
                     if type(v) in (int, float, bool)]
    # ``np.isin`` equates through float64; table ints beyond 2^53 (or
    # any probe column that large, checked at runtime) need Python's
    # exact int↔float equality instead.
    numeric_exact = all(
        type(v) is not int or abs(v) <= _EXACT_FLOAT_INT
        for v in numeric_table)
    date_table = [v.toordinal() for v in values
                  if type(v) is datetime.date]
    fallback = _list_fallback(expr)

    def in_list(batch):
        col = operand(batch)
        kind = col.kind
        if kind in "if" and numeric_exact:
            if kind == "i" and _int_exceeds_exact_float(col) and any(
                    type(v) is float for v in numeric_table):
                return fallback(batch)
            found = (np.isin(col.values, numeric_table)
                     if numeric_table
                     else np.zeros(len(col.values), dtype=np.bool_))
            return NumpyColumn("b", ~found if negated else found,
                               col.mask)
        if kind == "d":
            found = (np.isin(col.values, date_table) if date_table
                     else np.zeros(len(col.values), dtype=np.bool_))
            return NumpyColumn("b", ~found if negated else found,
                               col.mask)
        return fallback(batch)

    return in_list


# -- casts -----------------------------------------------------------------------


def _compile_cast(expr: ex.CastExpr) -> NKernel:
    operand = compile_np_kernel(expr.operand)
    kind = expr.target.kind

    def cast(batch):
        col = operand(batch)
        ck = col.kind
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT):
            if ck in "ib":
                return NumpyColumn(
                    "i", col.values.astype(np.int64), col.mask)
            if ck == "f":
                values = col.values
                finite = np.isfinite(values)
                if finite.all() and bool(
                        (np.abs(values) < 2.0 ** 62).all()):
                    # Python int(float) truncates toward zero.
                    return NumpyColumn(
                        "i", np.trunc(values).astype(np.int64),
                        col.mask)
        elif kind in (TypeKind.DECIMAL, TypeKind.DOUBLE):
            if ck == "f":
                return col
            if ck in "ib":
                return NumpyColumn(
                    "f", col.values.astype(np.float64), col.mask)
        elif kind is TypeKind.BOOLEAN:
            if ck == "b":
                return col
            if ck in "if":
                # bool(x) for numbers is x != 0 (bool(nan) is True and
                # NaN != 0 agrees).
                return NumpyColumn("b", col.values != 0, col.mask)
            if ck == "d":
                return NumpyColumn(
                    "b", np.ones(len(col.values), dtype=np.bool_),
                    col.mask)
        return column_from_list(
            [_cast(value, kind) for value in col.pylist()])

    return cast


# -- CASE ------------------------------------------------------------------------


def _compile_case(expr: ex.CaseWhen) -> NKernel:
    whens = [
        (compile_np_kernel(condition), condition.columns_used(),
         compile_np_kernel(result), result.columns_used())
        for condition, result in expr.whens
    ]
    if expr.otherwise is not None:
        otherwise = compile_np_kernel(expr.otherwise)
        otherwise_cols = expr.otherwise.columns_used()
    else:
        otherwise = None
        otherwise_cols = frozenset()

    def case(batch):
        length = batch.length
        active = np.ones(length, dtype=np.bool_)
        arms: List[Tuple[np.ndarray, NumpyColumn]] = []
        for cond_kernel, cond_cols, res_kernel, res_cols in whens:
            if not active.any():
                break
            sub = (batch if active.all()
                   else batch.compress(active, cond_cols))
            taken_sub = cond_kernel(sub).is_true_mask()
            taken = np.flatnonzero(active)[taken_sub]
            if len(taken):
                res_sub = (batch if len(taken) == length
                           else batch.take(taken, res_cols))
                arms.append((taken, res_kernel(res_sub)))
                active[taken] = False
        if otherwise is not None and active.any():
            rest = np.flatnonzero(active)
            sub = (batch if active.all()
                   else batch.take(rest, otherwise_cols))
            arms.append((rest, otherwise(sub)))
            active[rest] = False
        return _scatter_arms(length, arms, active)

    return case


def _scatter_arms(length: int,
                  arms: List[Tuple[np.ndarray, NumpyColumn]],
                  unset: np.ndarray) -> NumpyColumn:
    """Assemble per-arm result columns back into row order.  Same-kind
    typed arms scatter into one typed array; mixed kinds rebuild
    through native values (exactly the list kernel's result list)."""
    if len(arms) == 1 and not unset.any():
        indices, col = arms[0]
        if len(indices) == length:
            return col
    kinds = {col.kind for _, col in arms}
    if len(kinds) == 1 and (kind := kinds.pop()) in "ifbd":
        values = np.zeros(length, dtype=(
            np.bool_ if kind == "b" else
            np.float64 if kind == "f" else np.int64))
        if kind == "d":
            values[:] = 1  # date ordinals are >= 1
        mask = unset.copy()  # un-taken rows are NULL
        for indices, col in arms:
            values[indices] = col.values
            if col.mask is not None:
                mask[indices] = col.mask
        return NumpyColumn(kind, values,
                           mask if mask.any() else None)
    out: List = [None] * length
    for indices, col in arms:
        arm_values = col.pylist()
        for position, i in enumerate(indices.tolist()):
            out[i] = arm_values[position]
    return column_from_list(out)
