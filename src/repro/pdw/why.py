"""The plan-choice explainer — "why did the optimizer pick this plan?".

§2.5's headline claim is that enumerating distributed alternatives beats
*parallelizing the best serial plan*.  This module turns that claim into
a per-query printable artifact: it reruns the §2.5 strawman
(:func:`repro.pdw.baseline.parallelize_serial_plan`) against the same
search space and renders the winning plan next to the baseline as a
structural diff of their data movements, with per-subtree DMS cost
deltas.

The structured form is :class:`PlanChoice` (consumed by the JSONL /
Prometheus exporters in :mod:`repro.obs.export`); the rendered form is
:func:`render_plan_choice` (the ``repro why`` CLI and
``PdwSession.explain(optimizer=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.algebra.physical import PlanNode
from repro.catalog.shell_db import ShellDatabase
from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.dms import DataMovement
from repro.pdw.engine import CompiledQuery
from repro.pdw.enumerator import PdwPlan

__all__ = [
    "PlanMovement",
    "PlanChoice",
    "plan_movements",
    "diff_movements",
    "explain_plan_choice",
    "render_plan_choice",
]

# Costs are simulated seconds; two plans whose DMS costs differ by less
# than this are the same plan for §2.5 purposes.
_COST_EPSILON = 1e-12


@dataclass(frozen=True)
class PlanMovement:
    """One data movement in a distributed plan, with its *incremental*
    DMS cost (the movement's own contribution: subtree cost minus the
    cost already accumulated below it)."""

    movement: str          # DataMovement.describe()
    operation: str         # DMS operation value
    source: str            # distribution before the move
    target: str            # distribution after the move
    rows: float            # moved stream's estimated cardinality
    move_cost: float       # incremental DMS seconds
    subtree_cost: float    # total DMS seconds up to and including the move

    @property
    def signature(self) -> Tuple[str, str, str]:
        """Identity used for the structural diff: what moved where."""
        return (self.movement, self.source, self.target)


@dataclass(frozen=True)
class PlanChoice:
    """The §2.5 comparison for one query: chosen plan vs. baseline."""

    sql: str
    plan_cost: float           # DMS cost of the optimizer's plan
    baseline_cost: float       # DMS cost of the parallelized serial plan
    plan_tree: str
    baseline_tree: str
    plan_movements: Tuple[PlanMovement, ...]
    baseline_movements: Tuple[PlanMovement, ...]
    shared: Tuple[PlanMovement, ...]          # movements both plans make
    only_plan: Tuple[PlanMovement, ...]       # chosen plan only
    only_baseline: Tuple[PlanMovement, ...]   # baseline only

    @property
    def delta(self) -> float:
        """Extra DMS seconds the baseline pays (>= 0 in a correct run —
        the optimizer's space is a superset of the baseline's)."""
        return self.baseline_cost - self.plan_cost

    @property
    def delta_pct(self) -> float:
        """The delta relative to the chosen plan's cost, in percent
        (0.0 when the chosen plan moves no data at all)."""
        if self.plan_cost <= 0.0:
            return 0.0
        return 100.0 * self.delta / self.plan_cost

    @property
    def baseline_matches(self) -> bool:
        """True when parallelizing the best serial plan was optimal."""
        return abs(self.delta) <= _COST_EPSILON

    def to_dict(self) -> Dict[str, object]:
        """The JSONL ``plan_choice`` event payload (sans ``event`` tag)."""
        return {
            "sql": self.sql,
            "plan_cost": self.plan_cost,
            "baseline_cost": self.baseline_cost,
            "delta": self.delta,
            "delta_pct": self.delta_pct,
            "baseline_matches": self.baseline_matches,
            "movements_plan": len(self.plan_movements),
            "movements_baseline": len(self.baseline_movements),
            "movements_shared": len(self.shared),
        }


def plan_movements(root: PlanNode) -> List[PlanMovement]:
    """Every :class:`DataMovement` in a plan tree, pre-order, with its
    incremental DMS cost (node cost minus the children's)."""
    out: List[PlanMovement] = []
    for node in root.walk():
        op = node.op
        if not isinstance(op, DataMovement):
            continue
        below = sum(child.cost for child in node.children)
        out.append(PlanMovement(
            movement=op.describe(),
            operation=op.operation.value,
            source=str(op.source),
            target=str(op.target),
            rows=node.cardinality,
            move_cost=node.cost - below,
            subtree_cost=node.cost,
        ))
    return out


def diff_movements(plan: List[PlanMovement], baseline: List[PlanMovement]
                   ) -> Tuple[List[PlanMovement], List[PlanMovement],
                              List[PlanMovement]]:
    """Multiset diff by movement signature: (shared, only-plan,
    only-baseline).  Shared entries report the chosen plan's costs."""
    remaining: Dict[Tuple[str, str, str], List[PlanMovement]] = {}
    for move in baseline:
        remaining.setdefault(move.signature, []).append(move)
    shared: List[PlanMovement] = []
    only_plan: List[PlanMovement] = []
    for move in plan:
        bucket = remaining.get(move.signature)
        if bucket:
            bucket.pop()
            shared.append(move)
        else:
            only_plan.append(move)
    only_baseline = [move for bucket in remaining.values()
                     for move in bucket]
    return shared, only_plan, only_baseline


def explain_plan_choice(compiled: CompiledQuery,
                        shell: ShellDatabase) -> PlanChoice:
    """Build the §2.5 comparison for one compiled query.

    The baseline is recomputed from the compilation's serial result with
    the same effective PDW config (hints included), so the two plans
    answer the same question under the same constraints.
    """
    baseline: PdwPlan = parallelize_serial_plan(
        compiled.serial, shell, config=compiled.pdw_config)
    plan_moves = plan_movements(compiled.pdw_plan.root)
    baseline_moves = plan_movements(baseline.root)
    shared, only_plan, only_baseline = diff_movements(plan_moves,
                                                      baseline_moves)
    return PlanChoice(
        sql=compiled.sql,
        plan_cost=compiled.pdw_plan.cost,
        baseline_cost=baseline.cost,
        plan_tree=compiled.pdw_plan.tree_string(),
        baseline_tree=baseline.tree_string(),
        plan_movements=tuple(plan_moves),
        baseline_movements=tuple(baseline_moves),
        shared=tuple(shared),
        only_plan=tuple(only_plan),
        only_baseline=tuple(only_baseline),
    )


def _movement_lines(label: str, moves: Tuple[PlanMovement, ...]
                    ) -> List[str]:
    return [
        f"  {label:<17} {move.movement:<28} "
        f"{move.rows:>12.0f} rows  {move.move_cost:.6f} s"
        for move in moves
    ]


def render_plan_choice(choice: PlanChoice) -> str:
    """The printable "why this plan" §2.5 artifact."""
    lines = [
        'Why this plan? — optimizer vs. "parallelize the best serial '
        'plan" (§2.5)',
        "",
        f"Chosen distributed plan (DMS cost {choice.plan_cost:.6f} s):",
        choice.plan_tree,
        "",
        "Parallelized-serial baseline "
        f"(DMS cost {choice.baseline_cost:.6f} s):",
        choice.baseline_tree,
    ]
    if (choice.plan_movements or choice.baseline_movements):
        lines += ["", "Data-movement diff (incremental DMS cost per "
                      "movement subtree):"]
        lines += _movement_lines("shared", choice.shared)
        lines += _movement_lines("only in chosen", choice.only_plan)
        lines += _movement_lines("only in baseline", choice.only_baseline)
    lines.append("")
    if choice.baseline_matches:
        lines.append(
            "baseline == optimal: parallelizing the best serial plan is "
            f"optimal for this query (DMS cost {choice.plan_cost:.6f} s "
            "both).")
    else:
        lines.append(
            f"Baseline pays +{choice.delta:.6f} s DMS "
            f"(+{choice.delta_pct:.1f}%) over the chosen plan: "
            "enumerating distributed alternatives beat parallelizing "
            "the serial winner.")
    return "\n".join(lines)
