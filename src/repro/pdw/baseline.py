"""Baseline: parallelize the best *serial* plan (paper §2.5).

*"Unlike earlier approaches that simply parallelize the best serial plan,
our optimizer considers a rich space of execution alternatives."*  To
quantify that claim (benchmarks E3/E8) we implement the strawman: take the
serial optimizer's winning physical plan, freeze its shape (join order,
aggregation placement), and let the PDW machinery insert only the data
movements required to make each operator legal.

Implementation: the serial physical plan is mapped back to a logical tree,
memoized into a *fresh* MEMO with no exploration (each group holds exactly
one expression), and handed to the standard :class:`PdwOptimizer` — which
then has no join-order freedom, only movement choices.  Aggregations keep
their local/global freedom (real systems could always split an agg without
changing "the plan"), which makes the baseline as strong as possible.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import physical as phys
from repro.algebra.logical import (
    AggPhase,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
)
from repro.algebra.physical import PlanNode
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import PdwOptimizerError
from repro.obs.opt_trace import NULL_OPT_TRACE, OptimizerTrace
from repro.optimizer.cardinality import StatsContext
from repro.optimizer.memo import Memo
from repro.optimizer.search import OptimizationResult, SerialOptimizer
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwPlan


def physical_to_logical(node: PlanNode) -> LogicalOp:
    """Map a serial physical plan back to logical operators."""
    op = node.op
    children = [physical_to_logical(child) for child in node.children]

    if isinstance(op, phys.TableScan):
        get = LogicalGet(op.table, op.columns, op.alias)
        return get
    if isinstance(op, phys.Filter):
        return LogicalSelect(children[0], op.predicate)
    if isinstance(op, phys.ComputeScalar):
        return LogicalProject(children[0], op.outputs)
    if isinstance(op, (phys.HashJoin, phys.MergeJoin, phys.NestedLoopJoin)):
        # Physical hash joins may have swapped probe/build children; the
        # logical join is insensitive to the order for INNER, and other
        # kinds were never swapped.
        return LogicalJoin(op.kind, children[0], children[1], op.predicate)
    if isinstance(op, (phys.HashAggregate, phys.StreamAggregate)):
        return LogicalGroupBy(children[0], op.keys, op.aggregates,
                              AggPhase(op.phase))
    raise PdwOptimizerError(
        f"cannot lower {type(op).__name__} back to logical algebra")


def parallelize_serial_plan(serial: OptimizationResult,
                            shell: ShellDatabase,
                            config: Optional[PdwConfig] = None,
                            opt_trace: OptimizerTrace = NULL_OPT_TRACE
                            ) -> PdwPlan:
    """Cost-optimally insert data movement into the best serial plan.

    The plan *shape* is fixed; only movement placement is optimized —
    which is exactly what "parallelizing the best serial plan" can do.
    ``opt_trace`` records the (movement-only) enumeration the same way it
    does for the full optimizer.
    """
    if serial.best_serial_plan is None:
        raise PdwOptimizerError("serial optimization did not extract a plan")
    logical_root = physical_to_logical(serial.best_serial_plan)

    stats = StatsContext(shell)
    stats.register_tree(logical_root)
    # Derived columns (aggregates, computed projections) need widths.
    for var_id, width in serial.stats.var_widths.items():
        stats.var_widths.setdefault(var_id, width)
    for var_id, origin in serial.stats.var_origins.items():
        stats.var_origins.setdefault(var_id, origin)

    memo = Memo(stats)
    root_group = memo.insert_tree(logical_root)
    # Add local/global splits (no join reordering): the strongest version
    # of the baseline.
    SerialOptimizer(shell)._explore_aggregate_splits(memo)

    optimizer = PdwOptimizer(memo, root_group,
                             node_count=shell.node_count,
                             equivalence=serial.equivalence,
                             config=config,
                             opt_trace=opt_trace)
    return optimizer.optimize()
