"""Top-down PDW plan enumeration.

Paper §3.2: *"While our current implementation employs a bottom-up search
strategy, a top-down enumeration technique is equally applicable to the
PDW QO design."*  This module implements that alternative, in the style
of Cascades/Volcano required-property optimization:

``best(group, requirement)`` — the cheapest way to compute a MEMO group
under a *required distribution* — is solved by memoized recursion:

* each logical expression proposes strategies that translate the parent's
  requirement into child requirements (collocated joins request matching
  hash distributions; one-side-replicated joins request REPLICATED;
  aggregations request key-aligned hashing or a single node; unions
  request per-branch positional targets), and
* when a subplan's delivered distribution misses the requirement, the
  appropriate DMS operation is enforced on top, exactly as in the
  bottom-up enumerator.

Both enumerators share the DMS cost model, so they must agree on optimal
plan cost — benchmark E16 verifies that across the TPC-H suite, the
paper's "equally applicable" claim made executable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    AggPhase,
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.algebra.physical import PlanNode
from repro.algebra.properties import (
    ColumnEquivalence,
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    distribution_satisfies,
    hashed_on,
)
from repro.catalog.schema import DistributionKind
from repro.common.errors import PdwOptimizerError
from repro.optimizer.memo import GroupExpression, Memo
from repro.pdw.cost_model import CostConstants, DEFAULT_COST_CONSTANTS, DmsCostModel
from repro.pdw.dms import classify_movement
from repro.pdw.enumerator import PdwPlan
from repro.pdw.interesting import build_equivalence
from repro.pdw.preprocess import preprocess

INFINITY = float("inf")


class _Subplan:
    """A solved (group, requirement) cell."""

    __slots__ = ("op", "children", "group_id", "distribution", "cost")

    def __init__(self, op, children, group_id, distribution, cost):
        self.op = op
        self.children = children
        self.group_id = group_id
        self.distribution = distribution
        self.cost = cost


class TopDownPdwOptimizer:
    """Requirement-driven counterpart of :class:`PdwOptimizer`."""

    def __init__(self, memo: Memo, root_group: int, node_count: int,
                 equivalence: Optional[ColumnEquivalence] = None,
                 constants: CostConstants = DEFAULT_COST_CONSTANTS):
        self.memo = memo
        self.root_group = memo.find(root_group)
        self.node_count = node_count
        self.cost_model = DmsCostModel(node_count, constants)
        self.equivalence = equivalence or build_equivalence(memo, root_group)
        self._table: Dict[Tuple[int, Optional[Distribution]],
                          Optional[_Subplan]] = {}
        self._in_progress: Set[Tuple[int, Optional[Distribution]]] = set()
        self.cells_solved = 0

    # -- public API ---------------------------------------------------------

    def optimize(self) -> PdwPlan:
        self._pdw_exprs = preprocess(self.memo, self.node_count)
        best = self.best(self.root_group, None)
        if best is None:
            raise PdwOptimizerError(
                "top-down enumeration found no distributed plan")
        return PdwPlan(
            root=self._materialize(best),
            cost=best.cost,
            distribution=best.distribution,
            options_considered=self.cells_solved,
            options_retained=len(self._table),
        )

    # -- the memoized recursion ------------------------------------------------

    def best(self, group_id: int,
             requirement: Optional[Distribution]) -> Optional[_Subplan]:
        group_id = self.memo.find(group_id)
        key = (group_id, requirement)
        if key in self._table:
            return self._table[key]
        if key in self._in_progress:
            return None  # cycle via merged groups: no plan down this path
        self._in_progress.add(key)

        winner: Optional[_Subplan] = None
        for expr in self._pdw_exprs.get(group_id, ()):
            children = [self.memo.find(c) for c in expr.children]
            if group_id in children:
                continue
            for candidate in self._strategies(group_id, expr, children,
                                              requirement):
                self.cells_solved += 1
                if candidate is not None and (
                        winner is None or candidate.cost < winner.cost):
                    winner = candidate

        # Requirement not achievable natively: solve unconstrained and
        # enforce a movement on top.
        if requirement is not None:
            relaxed = self.best(group_id, None)
            enforced = self._enforce(group_id, relaxed, requirement)
            if enforced is not None and (winner is None
                                         or enforced.cost < winner.cost):
                winner = enforced

        self._in_progress.discard(key)
        self._table[key] = winner
        return winner

    # -- strategies per operator ---------------------------------------------------

    def _strategies(self, group_id: int, expr: GroupExpression,
                    children: List[int],
                    requirement: Optional[Distribution]):
        op = expr.op

        if isinstance(op, LogicalGet):
            plan = self._get_plan(group_id, op)
            yield self._checked(plan, requirement)
            return

        if isinstance(op, (LogicalSelect, LogicalProject)):
            child = self.best(children[0], requirement)
            if child is not None and self._satisfied(child.distribution,
                                                     requirement):
                yield _Subplan(op, (child,), group_id,
                               child.distribution, child.cost)
            # A pipeline may also satisfy the requirement through an
            # unconstrained child whose natural distribution happens to
            # match; best(children, None) covers that via _enforce above.
            if requirement is not None:
                child = self.best(children[0], None)
                if child is not None and self._satisfied(
                        child.distribution, requirement):
                    yield _Subplan(op, (child,), group_id,
                                   child.distribution, child.cost)
            return

        if isinstance(op, LogicalJoin):
            yield from self._join_strategies(group_id, op, children,
                                             requirement)
            return

        if isinstance(op, LogicalGroupBy):
            yield from self._groupby_strategies(group_id, op, children,
                                                requirement)
            return

        if isinstance(op, LogicalUnionAll):
            yield from self._union_strategies(group_id, op, children,
                                              requirement)
            return

    def _join_strategies(self, group_id: int, op: LogicalJoin,
                         children: List[int],
                         requirement: Optional[Distribution]):
        left_group = self.memo.group(children[0])
        right_group = self.memo.group(children[1])
        left_ids = frozenset(v.id for v in left_group.output_vars)
        right_ids = frozenset(v.id for v in right_group.output_vars)
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)

        child_requirements: List[Tuple[Optional[Distribution],
                                       Optional[Distribution]]] = []
        # (a) hash-collocated on each equi pair.
        for left_var, right_var in pairs:
            child_requirements.append(
                (hashed_on(left_var.id), hashed_on(right_var.id)))
        # (b/c) replicate one side; kind rules checked by the output fn.
        child_requirements.append((REPLICATED_DIST, None))
        child_requirements.append((None, REPLICATED_DIST))
        # (d) both unconstrained (natural collocation, e.g. both
        # replicated base tables or collocated base hashing).
        child_requirements.append((None, None))
        # (e) both on the control node.
        child_requirements.append((ON_CONTROL_DIST, ON_CONTROL_DIST))

        for left_req, right_req in child_requirements:
            left = self.best(children[0], left_req)
            right = self.best(children[1], right_req)
            if left is None or right is None:
                continue
            output = _join_output_distribution(
                op.kind, left.distribution, right.distribution, pairs,
                self.equivalence)
            if output is None:
                continue
            plan = _Subplan(op, (left, right), group_id, output,
                            left.cost + right.cost)
            checked = self._checked(plan, requirement)
            if checked is not None:
                yield checked

    def _groupby_strategies(self, group_id: int, op: LogicalGroupBy,
                            children: List[int],
                            requirement: Optional[Distribution]):
        if op.phase is AggPhase.LOCAL:
            child = self.best(children[0], requirement)
            if child is not None:
                yield _Subplan(op, (child,), group_id,
                               child.distribution, child.cost)
            if requirement is not None:
                child = self.best(children[0], None)
                if child is not None and self._satisfied(
                        child.distribution, requirement):
                    yield _Subplan(op, (child,), group_id,
                                   child.distribution, child.cost)
            return

        child_requirements: List[Distribution] = []
        for key in op.keys:
            child_requirements.append(hashed_on(key.id))
        child_requirements.append(REPLICATED_DIST)
        child_requirements.append(ON_CONTROL_DIST)
        for child_req in child_requirements:
            child = self.best(children[0], child_req)
            if child is None:
                continue
            output = _aggregation_output_distribution(
                op, child.distribution, self.equivalence)
            if output is None:
                continue
            plan = _Subplan(op, (child,), group_id, output, child.cost)
            checked = self._checked(plan, requirement)
            if checked is not None:
                yield checked

    def _union_strategies(self, group_id: int, op: LogicalUnionAll,
                          children: List[int],
                          requirement: Optional[Distribution]):
        targets: List[Tuple[Distribution, List[Distribution]]] = []
        for position in range(len(op.outputs)):
            targets.append((
                hashed_on(op.outputs[position].id),
                [hashed_on(branch[position].id)
                 for branch in op.branch_columns],
            ))
        targets.append((REPLICATED_DIST,
                        [REPLICATED_DIST] * len(children)))
        targets.append((ON_CONTROL_DIST,
                        [ON_CONTROL_DIST] * len(children)))

        for output_dist, branch_targets in targets:
            picked: List[_Subplan] = []
            total = 0.0
            feasible = True
            for child_id, target in zip(children, branch_targets):
                child = self.best(child_id, target)
                if child is None:
                    feasible = False
                    break
                picked.append(child)
                total += child.cost
            if not feasible:
                continue
            plan = _Subplan(op, tuple(picked), group_id, output_dist,
                            total)
            checked = self._checked(plan, requirement)
            if checked is not None:
                yield checked

    # -- helpers --------------------------------------------------------------------

    def _get_plan(self, group_id: int, op: LogicalGet) -> _Subplan:
        table = op.table
        if table.distribution.kind is DistributionKind.REPLICATED:
            distribution = REPLICATED_DIST
        elif table.distribution.kind is DistributionKind.CONTROL:
            distribution = ON_CONTROL_DIST
        else:
            columns = []
            for dist_col in table.distribution.columns:
                var = next(
                    (v for v in op.columns
                     if v.name.lower() == dist_col.lower()), None)
                if var is None:
                    raise PdwOptimizerError(
                        f"distribution column {dist_col!r} missing")
                columns.append(var.id)
            distribution = Distribution(DistKind.HASHED, tuple(columns))
        return _Subplan(op, (), group_id, distribution, 0.0)

    def _satisfied(self, delivered: Distribution,
                   requirement: Optional[Distribution]) -> bool:
        if requirement is None:
            return True
        return distribution_satisfies(delivered, requirement,
                                      self.equivalence)

    def _checked(self, plan: Optional[_Subplan],
                 requirement: Optional[Distribution]
                 ) -> Optional[_Subplan]:
        if plan is None:
            return None
        if self._satisfied(plan.distribution, requirement):
            return plan
        return self._enforce(plan.group_id, plan, requirement)

    def _enforce(self, group_id: int, plan: Optional[_Subplan],
                 requirement: Distribution) -> Optional[_Subplan]:
        if plan is None:
            return None
        if self._satisfied(plan.distribution, requirement):
            return plan
        hash_columns: Tuple[ex.ColumnVar, ...] = ()
        target = requirement
        if requirement.kind is DistKind.HASHED:
            group = self.memo.group(group_id)
            var = next(
                (v for v in group.output_vars
                 if self.equivalence.are_equivalent(
                     v.id, requirement.columns[0])), None)
            if var is None:
                return None
            hash_columns = (var,)
            target = hashed_on(var.id)
        movement = classify_movement(plan.distribution, target,
                                     hash_columns)
        if movement is None:
            return None
        group = self.memo.group(group_id)
        cost = self.cost_model.cost(movement, group.cardinality,
                                    group.row_width)
        return _Subplan(movement, (plan,), group_id, target,
                        plan.cost + cost)

    def _materialize(self, plan: _Subplan) -> PlanNode:
        children = [self._materialize(c) for c in plan.children]
        group = self.memo.group(plan.group_id)
        return PlanNode(
            plan.op, children,
            output_columns=group.output_vars,
            cardinality=group.cardinality,
            row_width=group.row_width,
            cost=plan.cost,
        )


def _join_output_distribution(kind: JoinKind, left: Distribution,
                              right: Distribution, pairs,
                              equivalence: ColumnEquivalence
                              ) -> Optional[Distribution]:
    """Same collocation rules as the bottom-up enumerator."""
    hashed_aligned = _hash_aligned(left, right, pairs, equivalence)
    if kind in (JoinKind.INNER, JoinKind.CROSS):
        if left.kind is DistKind.REPLICATED:
            return right
        if right.kind is DistKind.REPLICATED:
            return left
        if hashed_aligned:
            return left
        if (left.kind is DistKind.ON_CONTROL
                and right.kind is DistKind.ON_CONTROL):
            return ON_CONTROL_DIST
        return None
    if right.kind is DistKind.REPLICATED:
        if left.kind is DistKind.REPLICATED:
            return REPLICATED_DIST
        if left.kind in (DistKind.HASHED, DistKind.SINGLE_NODE):
            return left
        return None
    if hashed_aligned:
        return left
    if (left.kind is DistKind.ON_CONTROL
            and right.kind is DistKind.ON_CONTROL):
        return ON_CONTROL_DIST
    return None


def _hash_aligned(left: Distribution, right: Distribution, pairs,
                  equivalence: ColumnEquivalence) -> bool:
    if left.kind is not DistKind.HASHED or \
            right.kind is not DistKind.HASHED:
        return False
    if len(left.columns) != len(right.columns):
        return False

    def matches(left_col: int, right_col: int) -> bool:
        for left_var, right_var in pairs:
            if (equivalence.are_equivalent(left_col, left_var.id)
                    and equivalence.are_equivalent(right_col,
                                                   right_var.id)):
                return True
            if (equivalence.are_equivalent(left_col, right_var.id)
                    and equivalence.are_equivalent(right_col,
                                                   left_var.id)):
                return True
        return False

    return all(matches(lc, rc)
               for lc, rc in zip(left.columns, right.columns))


def _aggregation_output_distribution(op: LogicalGroupBy,
                                     child: Distribution,
                                     equivalence: ColumnEquivalence
                                     ) -> Optional[Distribution]:
    if child.kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE,
                      DistKind.REPLICATED):
        return child
    if child.kind is DistKind.HASHED and op.keys:
        key_ids = [k.id for k in op.keys]
        aligned = all(
            any(equivalence.are_equivalent(hash_col, key_id)
                for key_id in key_ids)
            for hash_col in child.columns
        )
        if aligned:
            renamed = []
            for hash_col in child.columns:
                match = next(
                    (key_id for key_id in key_ids
                     if equivalence.are_equivalent(hash_col, key_id)),
                    hash_col)
                renamed.append(match)
            return Distribution(DistKind.HASHED, tuple(renamed))
    return None
