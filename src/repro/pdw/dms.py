"""Data Movement Service operations (paper §3.3.2).

The seven physical data movement operations:

1. **Shuffle Move** (many-to-many) — rows re-partitioned by hash of a
   distribution column.
2. **Partition Move** (many-to-one) — all rows to a single target node
   (typically the control node).
3. **Control-Node Move** — a control-node table replicated to all compute
   nodes.
4. **Broadcast Move** — rows from every compute node to every compute node.
5. **Trim Move** — a replicated table reduced in place to a hash-distributed
   one (each node keeps only the rows it owns).
6. **Replicated Broadcast** — a single-node table replicated via broadcast.
7. **Remote Copy** — copy to a single node (replicated or distributed
   source).

Every one is implemented by the common runtime DMS operator (Figure 5),
whose cost is source/target component based — see
:mod:`repro.pdw.cost_model`.

:class:`DataMovement` is the plan-tree operator; it satisfies the same
``describe``/``local_key`` protocol as physical operators so it can live in
:class:`repro.algebra.physical.PlanNode` trees.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.algebra.expressions import ColumnVar
from repro.algebra.properties import Distribution


class DmsOperation(enum.Enum):
    """The seven DMS operation types of §3.3.2."""

    SHUFFLE_MOVE = "shuffle"
    PARTITION_MOVE = "partition_move"
    CONTROL_NODE_MOVE = "control_node_move"
    BROADCAST_MOVE = "broadcast"
    TRIM_MOVE = "trim"
    REPLICATED_BROADCAST = "replicated_broadcast"
    REMOTE_COPY = "remote_copy"

    @property
    def uses_hashing(self) -> bool:
        """Operations whose reader hashes rows (λ_hash vs λ_direct,
        §3.3.3)."""
        return self in (DmsOperation.SHUFFLE_MOVE, DmsOperation.TRIM_MOVE)


class DataMovement:
    """A data-movement node in a distributed plan tree.

    ``operation`` is the DMS flavor; ``hash_columns`` are the target
    distribution columns for SHUFFLE/TRIM; ``source`` / ``target`` are the
    distributions before and after the move (the cost model needs both to
    size each component's byte stream).
    """

    def __init__(self, operation: DmsOperation,
                 source: Distribution,
                 target: Distribution,
                 hash_columns: Sequence[ColumnVar] = ()):
        self.operation = operation
        self.source = source
        self.target = target
        self.hash_columns = tuple(hash_columns)

    def local_key(self) -> tuple:
        return ("DMS", self.operation.value, self.source, self.target,
                tuple(c.id for c in self.hash_columns))

    @property
    def name(self) -> str:
        return self.operation.name

    def describe(self) -> str:
        if self.hash_columns:
            cols = ", ".join(c.name for c in self.hash_columns)
            return f"{_DISPLAY[self.operation]}({cols})"
        return _DISPLAY[self.operation]


_DISPLAY = {
    DmsOperation.SHUFFLE_MOVE: "ShuffleMove",
    DmsOperation.PARTITION_MOVE: "PartitionMove",
    DmsOperation.CONTROL_NODE_MOVE: "ControlNodeMove",
    DmsOperation.BROADCAST_MOVE: "BroadcastMove",
    DmsOperation.TRIM_MOVE: "TrimMove",
    DmsOperation.REPLICATED_BROADCAST: "ReplicatedBroadcast",
    DmsOperation.REMOTE_COPY: "RemoteCopy",
}


def classify_movement(source: Distribution, target: Distribution,
                      hash_columns: Sequence[ColumnVar] = ()
                      ) -> Optional[DataMovement]:
    """Pick the DMS operation that turns ``source`` into ``target``.

    Returns ``None`` when no movement is needed or no single DMS op
    performs the change (the enforcer only requests reachable targets).
    """
    from repro.algebra.properties import DistKind

    if source == target:
        return None

    if target.kind is DistKind.HASHED:
        if source.kind is DistKind.HASHED:
            return DataMovement(DmsOperation.SHUFFLE_MOVE, source, target,
                                hash_columns)
        if source.kind is DistKind.REPLICATED:
            return DataMovement(DmsOperation.TRIM_MOVE, source, target,
                                hash_columns)
        if source.kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE):
            return DataMovement(DmsOperation.SHUFFLE_MOVE, source, target,
                                hash_columns)

    if target.kind is DistKind.REPLICATED:
        if source.kind is DistKind.HASHED:
            return DataMovement(DmsOperation.BROADCAST_MOVE, source, target)
        if source.kind is DistKind.ON_CONTROL:
            return DataMovement(DmsOperation.CONTROL_NODE_MOVE, source,
                                target)
        if source.kind is DistKind.SINGLE_NODE:
            return DataMovement(DmsOperation.REPLICATED_BROADCAST, source,
                                target)

    if target.kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE):
        if source.kind is DistKind.HASHED:
            return DataMovement(DmsOperation.PARTITION_MOVE, source, target)
        if source.kind is DistKind.REPLICATED:
            return DataMovement(DmsOperation.REMOTE_COPY, source, target)
        if source.kind is not target.kind:
            return DataMovement(DmsOperation.REMOTE_COPY, source, target)

    return None
