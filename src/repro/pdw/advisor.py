"""Automated partitioning design (the paper's reference [10]).

The PDW paper cites Nehme & Bruno, *"Automated partitioning design in
parallel database systems"* (SIGMOD 2011) — by the same team, built
directly on this optimizer: candidate table distributions are evaluated
by compiling a workload in *what-if* mode and reading the DMS cost the
PDW optimizer reports.

:class:`PartitioningAdvisor` implements that loop:

1. extract candidate distribution columns from the workload (columns in
   equality-join predicates and group-by keys — the same "interesting
   columns" of §3.2, observed per base table);
2. add REPLICATED as a candidate for every table, charged a storage/
   maintenance penalty so replication must earn its keep;
3. greedy search: repeatedly apply the single table-distribution change
   that most reduces total workload cost, until a fixed point.

The advisor never touches the input shell database; every what-if
evaluation runs against a re-distributed copy that shares the column
statistics (re-partitioning does not change global statistics — another
convenience of the paper's shell-database design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalOp,
)
from repro.catalog.schema import (
    Catalog,
    REPLICATED,
    TableDef,
    TableDistribution,
    hash_distributed,
)
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import PdwOptimizerError
from repro.optimizer.binder import Binder
from repro.optimizer.normalize import normalize
from repro.pdw.engine import PdwEngine
from repro.sql.parser import parse_query

Design = Dict[str, TableDistribution]


@dataclass
class WorkloadQuery:
    """One workload entry: SQL plus a relative execution frequency."""

    sql: str
    weight: float = 1.0


@dataclass
class DesignEvaluation:
    """Cost of one candidate design on the workload."""

    design: Design
    query_costs: List[float]
    replication_penalty: float

    @property
    def total_cost(self) -> float:
        return sum(self.query_costs) + self.replication_penalty


@dataclass
class AdvisorResult:
    """The recommendation plus the search trace."""

    recommended: Design
    initial: DesignEvaluation
    final: DesignEvaluation
    steps: List[Tuple[str, TableDistribution, float]] = field(
        default_factory=list)
    designs_evaluated: int = 0

    @property
    def improvement(self) -> float:
        if self.final.total_cost <= 0:
            return float("inf")
        return self.initial.total_cost / self.final.total_cost

    def describe(self) -> str:
        lines = [
            f"evaluated {self.designs_evaluated} candidate designs",
            f"initial workload cost: {self.initial.total_cost:.6f}s",
            f"final workload cost:   {self.final.total_cost:.6f}s "
            f"({self.improvement:.2f}x better)",
            "recommended design:",
        ]
        for table, dist in sorted(self.recommended.items()):
            lines.append(f"  {table:<12} {dist}")
        return "\n".join(lines)


class PartitioningAdvisor:
    """Greedy what-if search over table distribution designs."""

    def __init__(self, shell: ShellDatabase,
                 workload: Sequence[WorkloadQuery],
                 replication_penalty_per_byte: float = 1.0e-9,
                 max_rounds: int = 8):
        if not workload:
            raise PdwOptimizerError("advisor needs a non-empty workload")
        self.shell = shell
        self.workload = list(workload)
        self.replication_penalty_per_byte = replication_penalty_per_byte
        self.max_rounds = max_rounds

    # -- candidate generation ---------------------------------------------------

    def candidate_distributions(self) -> Dict[str, List[TableDistribution]]:
        """Candidate placements per table: hash on each interesting
        column observed in the workload, plus REPLICATED."""
        interesting = self._interesting_columns()
        candidates: Dict[str, List[TableDistribution]] = {}
        for table in self.shell.tables():
            if table.is_temp:
                continue
            options: List[TableDistribution] = [REPLICATED]
            for column in sorted(interesting.get(table.name.lower(), ())):
                options.append(hash_distributed(column))
            current = table.distribution
            if current not in options:
                options.append(current)
            candidates[table.name.lower()] = options
        return candidates

    def _interesting_columns(self) -> Dict[str, Set[str]]:
        result: Dict[str, Set[str]] = {}
        binder_catalog = self.shell.catalog
        for entry in self.workload:
            query = normalize(
                Binder(binder_catalog).bind(parse_query(entry.sql)))
            origins = _column_origins(query.root)
            for op in _walk(query.root):
                if isinstance(op, LogicalJoin) and op.predicate is not None:
                    left_ids = frozenset(
                        v.id for v in op.left.output_columns())
                    right_ids = frozenset(
                        v.id for v in op.right.output_columns())
                    for left_var, right_var in ex.equi_join_pairs(
                            op.predicate, left_ids, right_ids):
                        for var in (left_var, right_var):
                            origin = origins.get(var.id)
                            if origin is not None:
                                result.setdefault(origin[0], set()).add(
                                    origin[1])
                if isinstance(op, LogicalGroupBy):
                    for key in op.keys:
                        origin = origins.get(key.id)
                        if origin is not None:
                            result.setdefault(origin[0], set()).add(
                                origin[1])
        return result

    # -- what-if evaluation --------------------------------------------------------

    def current_design(self) -> Design:
        return {
            table.name.lower(): table.distribution
            for table in self.shell.tables() if not table.is_temp
        }

    def evaluate(self, design: Design) -> DesignEvaluation:
        """Compile the workload against a re-distributed shell copy."""
        shell = self._shell_for(design)
        engine = PdwEngine(shell)
        costs = [
            engine.compile(entry.sql, extract_serial=False).plan_cost
            * entry.weight
            for entry in self.workload
        ]
        penalty = 0.0
        for table_name, distribution in design.items():
            if distribution == REPLICATED:
                table = self.shell.table(table_name)
                penalty += (self.replication_penalty_per_byte
                            * table.row_count
                            * self.shell.avg_row_width(table_name)
                            * max(1, self.shell.node_count - 1))
        return DesignEvaluation(dict(design), costs, penalty)

    def _shell_for(self, design: Design) -> ShellDatabase:
        tables = []
        for table in self.shell.tables():
            if table.is_temp:
                continue
            distribution = design.get(table.name.lower(),
                                      table.distribution)
            tables.append(TableDef(
                table.name,
                list(table.columns),
                distribution,
                row_count=table.row_count,
                primary_key=table.primary_key,
            ))
        shell = ShellDatabase(Catalog(tables), self.shell.node_count)
        for table in tables:
            for column in table.columns:
                if self.shell.has_column_stats(table.name, column.name):
                    shell.set_column_stats(
                        table.name, column.name,
                        self.shell.column_stats(table.name, column.name))
        return shell

    # -- greedy search ----------------------------------------------------------------

    def recommend(self) -> AdvisorResult:
        candidates = self.candidate_distributions()
        design = self.current_design()
        initial = self.evaluate(design)
        best = initial
        evaluated = 1
        steps: List[Tuple[str, TableDistribution, float]] = []

        for _ in range(self.max_rounds):
            round_best: Optional[DesignEvaluation] = None
            round_change: Optional[Tuple[str, TableDistribution]] = None
            for table_name, options in candidates.items():
                for option in options:
                    if design[table_name] == option:
                        continue
                    trial = dict(design)
                    trial[table_name] = option
                    evaluation = self.evaluate(trial)
                    evaluated += 1
                    if (round_best is None
                            or evaluation.total_cost
                            < round_best.total_cost):
                        round_best = evaluation
                        round_change = (table_name, option)
            if round_best is None or \
                    round_best.total_cost >= best.total_cost - 1e-15:
                break
            design = round_best.design
            best = round_best
            steps.append((round_change[0], round_change[1],
                          round_best.total_cost))

        return AdvisorResult(
            recommended=design,
            initial=initial,
            final=best,
            steps=steps,
            designs_evaluated=evaluated,
        )


def _walk(op: LogicalOp):
    yield op
    for child in op.children:
        yield from _walk(child)


def _column_origins(root: LogicalOp) -> Dict[int, Tuple[str, str]]:
    origins: Dict[int, Tuple[str, str]] = {}
    for op in _walk(root):
        if isinstance(op, LogicalGet):
            for var in op.columns:
                origins[var.id] = (op.table.name.lower(),
                                   var.name.lower())
    return origins
