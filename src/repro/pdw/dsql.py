"""DSQL plan generation (paper §2.4, §3.4, Figure 6).

The winning PDW plan tree is cut at its :class:`DataMovement` nodes into
sequential **DSQL steps**:

* each movement becomes a **DMS step**: the SQL statement extracting the
  source rows (run against the per-node DBMS instances), the tuple routing
  policy, and the destination temp table (``TEMP_ID_k``);
* the fragment above the last movement becomes the **Return step**, whose
  SQL streams result tuples back through the control node, carrying the
  user's ORDER BY / TOP.

Steps execute serially, one at a time, each one parallel across nodes —
exactly the execution model of §2.4 ("plans are executed serially, one
step at a time ... a single step typically involves parallel operations
across multiple compute nodes").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import LogicalGet
from repro.algebra.physical import PlanNode
from repro.algebra.properties import DistKind, Distribution
from repro.catalog.schema import (
    Column,
    ON_CONTROL,
    REPLICATED,
    TableDef,
    hash_distributed,
)
from repro.common.errors import PdwOptimizerError
from repro.obs.profiler import OperatorEstimate, fragment_operator_estimates
from repro.pdw.dms import DataMovement
from repro.pdw.qrel import build_name_map, plan_fragment_to_sql
from repro.telemetry import NULL_TRACER, Tracer


class StepKind(enum.Enum):
    DMS = "dms"
    RETURN = "return"


@dataclass
class DsqlStep:
    """One step of a DSQL plan."""

    index: int
    kind: StepKind
    sql: str
    source_location: Distribution
    movement: Optional[DataMovement] = None
    destination_table: Optional[TableDef] = None
    hash_column: Optional[str] = None
    estimated_rows: float = 0.0
    estimated_bytes: float = 0.0
    estimated_cost: float = 0.0
    #: Per-operator cardinality estimates of the step's source fragment
    #: (postorder), joined against runtime actuals by the profiler.
    operator_estimates: List[OperatorEstimate] = field(default_factory=list)

    def describe(self) -> str:
        if self.kind is StepKind.RETURN:
            header = f"DSQL step {self.index}: Return"
        else:
            target = self.destination_table.name if self.destination_table \
                else "?"
            detail = self.movement.describe() if self.movement else "Move"
            header = (f"DSQL step {self.index}: DMS {detail} "
                      f"-> {target} "
                      f"(est. {self.estimated_rows:.0f} rows, "
                      f"{self.estimated_cost:.6f}s)")
        return f"{header}\n  {self.sql}"


@dataclass
class DsqlPlan:
    """An ordered list of DSQL steps plus result presentation info."""

    steps: List[DsqlStep]
    output_names: List[str]
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    total_cost: float = 0.0

    @property
    def movement_steps(self) -> List[DsqlStep]:
        return [s for s in self.steps if s.kind is StepKind.DMS]

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)


class DsqlGenerator:
    """Figure 2: "DSQL generator" — plan tree in, executable steps out."""

    def __init__(self, temp_prefix: str = "TEMP_ID_"):
        self.temp_prefix = temp_prefix

    def generate(self, plan: PlanNode,
                 output_names: List[str],
                 output_vars: List[ex.ColumnVar],
                 order_by: Optional[List[Tuple[ex.ColumnVar, bool]]] = None,
                 limit: Optional[int] = None,
                 final_distribution: Optional[Distribution] = None,
                 total_cost: float = 0.0,
                 tracer: Tracer = NULL_TRACER) -> DsqlPlan:
        with tracer.span("dsql.generate") as span:
            result = self._generate(
                plan, output_names, output_vars, order_by, limit,
                final_distribution, total_cost)
            if tracer.enabled:
                span.set("steps", len(result.steps))
                tracer.count("dsql.steps_emitted", len(result.steps))
                tracer.count("dsql.dms_steps",
                             len(result.movement_steps))
        return result

    def _generate(self, plan: PlanNode,
                  output_names: List[str],
                  output_vars: List[ex.ColumnVar],
                  order_by: Optional[List[Tuple[ex.ColumnVar, bool]]],
                  limit: Optional[int],
                  final_distribution: Optional[Distribution],
                  total_cost: float) -> DsqlPlan:
        plan = plan.clone_tree()  # cutting rewrites nodes in place
        name_map = self._name_map(plan)
        steps: List[DsqlStep] = []

        rewritten = self._cut_movements(plan, name_map, steps)

        final_sql = plan_fragment_to_sql(
            rewritten, name_map,
            order_by=order_by, limit=limit,
            output_names=output_names, output_vars=output_vars,
        )
        location = final_distribution or Distribution(DistKind.ON_CONTROL)
        steps.append(DsqlStep(
            index=len(steps),
            kind=StepKind.RETURN,
            sql=final_sql,
            source_location=location,
            estimated_rows=rewritten.cardinality,
            estimated_bytes=rewritten.cardinality * rewritten.row_width,
            operator_estimates=fragment_operator_estimates(rewritten),
        ))
        return DsqlPlan(
            steps=steps,
            output_names=list(output_names),
            order_by=[
                (_output_name(var, output_vars, output_names, name_map), asc)
                for var, asc in (order_by or [])
            ],
            limit=limit,
            total_cost=total_cost,
        )

    # -- internals ---------------------------------------------------------------

    def _name_map(self, plan: PlanNode) -> Dict[int, str]:
        vars_seen: List[ex.ColumnVar] = []
        for node in plan.walk():
            vars_seen.extend(node.output_columns)
            if isinstance(node.op, LogicalGet):
                vars_seen.extend(node.op.columns)
        return build_name_map(vars_seen)

    def _cut_movements(self, node: PlanNode, name_map: Dict[int, str],
                       steps: List[DsqlStep]) -> PlanNode:
        node.children = [
            self._cut_movements(child, name_map, steps)
            for child in node.children
        ]
        if not isinstance(node.op, DataMovement):
            return node

        movement: DataMovement = node.op
        child = node.children[0]
        sql = plan_fragment_to_sql(child, name_map)
        temp_name = f"{self.temp_prefix}{len(steps) + 1}"
        temp_def = self._temp_table_def(temp_name, child, movement,
                                        name_map)
        hash_column = (name_map[movement.hash_columns[0].id]
                       if movement.hash_columns else None)
        steps.append(DsqlStep(
            index=len(steps),
            kind=StepKind.DMS,
            sql=sql,
            source_location=movement.source,
            movement=movement,
            destination_table=temp_def,
            hash_column=hash_column,
            estimated_rows=node.cardinality,
            estimated_bytes=node.cardinality * node.row_width,
            estimated_cost=max(0.0, node.cost - child.cost),
            operator_estimates=fragment_operator_estimates(child),
        ))
        get = LogicalGet(temp_def, list(child.output_columns),
                         alias=temp_name)
        return PlanNode(
            get, [],
            output_columns=list(child.output_columns),
            cardinality=node.cardinality,
            row_width=node.row_width,
            cost=node.cost,
        )

    def _temp_table_def(self, name: str, child: PlanNode,
                        movement: DataMovement,
                        name_map: Dict[int, str]) -> TableDef:
        columns = [
            Column(name_map[var.id], var.sql_type)
            for var in child.output_columns
        ]
        target = movement.target
        if target.kind is DistKind.HASHED:
            hash_names = []
            for column_id in target.columns:
                match = next(
                    (name_map[var.id] for var in child.output_columns
                     if var.id == column_id), None)
                if match is None:
                    raise PdwOptimizerError(
                        f"hash column #{column_id} missing from moved "
                        f"result for {name}")
                hash_names.append(match)
            distribution = hash_distributed(*hash_names)
        elif target.kind is DistKind.REPLICATED:
            distribution = REPLICATED
        else:
            distribution = ON_CONTROL
        return TableDef(
            name, columns, distribution,
            row_count=int(round(child.cardinality)),
            is_temp=True,
        )


def _output_name(var: ex.ColumnVar, output_vars, output_names,
                 name_map: Dict[int, str]) -> str:
    for out_var, out_name in zip(output_vars, output_names):
        if out_var.id == var.id:
            return out_name
    return name_map[var.id]
