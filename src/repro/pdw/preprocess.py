"""PDW memo pre-processing (Figure 4, steps 02-03).

Step 02 — *"Apply MEMO pre-processor rules (bottom-up).  Example: Fix
cardinality estimates of partial aggregates based on PDW topology."*

The serial optimizer estimated a LOCAL-phase GroupBy's output as if it ran
on one node; on the appliance each of the N nodes produces up to one row
per group, so the partial-aggregate cardinality is
``min(input_rows, global_groups × N)``.

Step 03 — *"Merge equivalent group expressions from the perspective of
PDW."*  The PDW optimizer executes relational fragments by shipping SQL to
the compute nodes, so serial physical alternatives (HashJoin vs MergeJoin)
are indistinguishable to it; only the logical expressions (deduplicated by
operator identity) survive as enumeration sources.
"""

from __future__ import annotations

from typing import Dict, List

from repro.algebra.logical import AggPhase, LogicalGroupBy, detached_groupby
from repro.optimizer.cardinality import estimate_operator_cardinality
from repro.optimizer.memo import GroupExpression, Memo


def fix_partial_aggregate_cardinalities(memo: Memo, node_count: int) -> int:
    """Figure 4 step 02; returns the number of groups adjusted."""
    adjusted = 0
    for group in memo.canonical_groups():
        local_exprs = [
            expr for expr in group.logical_expressions
            if isinstance(expr.op, LogicalGroupBy)
            and expr.op.phase is AggPhase.LOCAL
        ]
        if not local_exprs or len(local_exprs) != len(
                group.logical_expressions):
            # Mixed groups keep their serial estimate: some expression in
            # the group is not a partial aggregate, so the group's result
            # is a genuine query intermediate.
            continue
        expr = local_exprs[0]
        child = memo.group(expr.children[0])
        complete = detached_groupby(expr.op.keys, expr.op.aggregates,
                                    AggPhase.COMPLETE)
        global_groups = estimate_operator_cardinality(
            complete, memo.stats, (child.cardinality,),
            [child.output_vars])
        fixed = min(child.cardinality, global_groups * node_count)
        if fixed != group.cardinality:
            group.cardinality = fixed
            adjusted += 1
    return adjusted


def pdw_expressions(memo: Memo) -> Dict[int, List[GroupExpression]]:
    """Figure 4 step 03: per-group logical expressions, deduplicated from
    the PDW perspective (serial physical variants collapsed away)."""
    result: Dict[int, List[GroupExpression]] = {}
    for group in memo.canonical_groups():
        seen = set()
        kept: List[GroupExpression] = []
        for expr in group.logical_expressions:
            key = expr.key
            if key in seen:
                continue
            seen.add(key)
            kept.append(expr)
        result[group.id] = kept
    return result


def preprocess(memo: Memo, node_count: int) -> Dict[int, List[GroupExpression]]:
    """Run steps 02 and 03; returns the PDW-visible expression lists."""
    fix_partial_aggregate_cardinalities(memo, node_count)
    return pdw_expressions(memo)
