"""QRel: relational trees back to SQL statements (paper §3.4, Figure 6).

*"Performing DSQL generation requires taking an operator tree and
translating it back to SQL.  We employ the QRel programming framework,
which encapsulates the knowledge of mapping relational trees to query
statements."*

The pipeline mirrors the paper's: a physical/logical operator tree is
converted into an AST (:mod:`repro.sql.ast_nodes`) and rendered to text.
Every operator nests its input as a derived table with a generated alias
(``T1_1``, ``T2_1``, ...), which is exactly the shape of the generated SQL
shown in Figure 7.

The entry point is :func:`plan_fragment_to_sql`, which translates a
relational fragment whose leaves are base-table Gets (including temp
tables staged by earlier DSQL steps) and returns both the SQL text and the
emitted column name for every output variable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.algebra.physical import PlanNode
from repro.common.errors import PdwOptimizerError
from repro.common.types import SqlType
from repro.sql import ast_nodes as ast
from repro.sql.lexer import KEYWORDS


def build_name_map(columns) -> Dict[int, str]:
    """Deterministic SQL column names for a set of column variables.

    A variable keeps its natural name unless another variable in the set
    shares it, in which case both get an ``_<id>`` suffix.
    """
    by_name: Dict[str, List[int]] = {}
    order: List[Tuple[int, str]] = []
    for var in columns:
        lowered = var.name.lower()
        by_name.setdefault(lowered, [])
        if var.id not in by_name[lowered]:
            by_name[lowered].append(var.id)
            order.append((var.id, var.name))
    names: Dict[int, str] = {}
    for var_id, name in order:
        owners = by_name[name.lower()]
        if name.upper() in KEYWORDS or not name.isidentifier():
            # SUM/COUNT/... make bad column aliases; so do synthesized
            # names that aren't identifiers.
            names[var_id] = f"col_{var_id}"
        elif len(owners) == 1:
            names[var_id] = name
        else:
            names[var_id] = f"{name}_{var_id}"
    return names


def type_name_of(sql_type: SqlType) -> str:
    """The SQL spelling of a type (for CREATE TABLE / CAST)."""
    return str(sql_type)


class SqlGenerator:
    """Generates one SELECT statement for a relational fragment."""

    def __init__(self, name_map: Dict[int, str]):
        self.name_map = name_map
        self._alias_counter = 0

    def _next_alias(self, depth: int) -> str:
        self._alias_counter += 1
        return f"T{depth}_{self._alias_counter}"

    # -- scalar rendering --------------------------------------------------------

    def render_scalar(self, expr: ex.ScalarExpr,
                      qualifiers: Dict[int, str]) -> ast.Expr:
        """Bound expression → AST, resolving vars to qualified columns."""
        if isinstance(expr, ex.ColumnVar):
            qualifier = qualifiers.get(expr.id)
            if qualifier is None:
                raise PdwOptimizerError(
                    f"column {expr} not in scope during SQL generation")
            return ast.ColumnRef(self.name_map[expr.id], qualifier)
        if isinstance(expr, ex.Constant):
            value = expr.value
            if hasattr(value, "isoformat"):
                return ast.Literal(value.isoformat(), is_date=True)
            return ast.Literal(value)
        if isinstance(expr, ex.Comparison):
            return ast.BinaryOp(expr.op,
                                self.render_scalar(expr.left, qualifiers),
                                self.render_scalar(expr.right, qualifiers))
        if isinstance(expr, ex.Arithmetic):
            return ast.BinaryOp(expr.op,
                                self.render_scalar(expr.left, qualifiers),
                                self.render_scalar(expr.right, qualifiers))
        if isinstance(expr, ex.BoolOp):
            rendered = [self.render_scalar(a, qualifiers) for a in expr.args]
            result = rendered[0]
            for part in rendered[1:]:
                result = ast.BinaryOp(expr.op, result, part)
            return result
        if isinstance(expr, ex.NotExpr):
            return ast.UnaryOp("NOT",
                               self.render_scalar(expr.operand, qualifiers))
        if isinstance(expr, ex.FuncExpr):
            args = [self.render_scalar(a, qualifiers) for a in expr.args]
            return ast.FuncCall(expr.name, args)
        if isinstance(expr, ex.CastExpr):
            return ast.Cast(self.render_scalar(expr.operand, qualifiers),
                            type_name_of(expr.target))
        if isinstance(expr, ex.CaseWhen):
            whens = [
                (self.render_scalar(c, qualifiers),
                 self.render_scalar(r, qualifiers))
                for c, r in expr.whens
            ]
            otherwise = (self.render_scalar(expr.otherwise, qualifiers)
                         if expr.otherwise is not None else None)
            return ast.CaseExpr(whens, otherwise)
        if isinstance(expr, ex.LikeExpr):
            return ast.Like(self.render_scalar(expr.operand, qualifiers),
                            ast.Literal(expr.pattern), expr.negated)
        if isinstance(expr, ex.InListExpr):
            values = [
                ast.Literal(v.isoformat(), is_date=True)
                if hasattr(v, "isoformat") else ast.Literal(v)
                for v in expr.values
            ]
            return ast.InList(self.render_scalar(expr.operand, qualifiers),
                              values, expr.negated)
        if isinstance(expr, ex.IsNullExpr):
            return ast.IsNull(self.render_scalar(expr.operand, qualifiers),
                              expr.negated)
        if isinstance(expr, ex.AggExpr):
            if expr.arg is None:
                return ast.FuncCall("COUNT", [ast.Star()])
            return ast.FuncCall(expr.func,
                                [self.render_scalar(expr.arg, qualifiers)],
                                distinct=expr.distinct)
        raise PdwOptimizerError(
            f"cannot render {type(expr).__name__} to SQL")

    # -- relational rendering -------------------------------------------------------

    def generate(self, node: PlanNode, depth: int = 1) -> Tuple[ast.SelectStatement,
                                                                str]:
        """Returns (statement, alias to use when nesting it)."""
        op = node.op

        if isinstance(op, LogicalGet):
            alias = self._next_alias(depth)
            items = [
                ast.SelectItem(ast.ColumnRef(self._get_column_name(op, var),
                                             alias),
                               self.name_map[var.id])
                for var in op.columns
            ]
            statement = ast.SelectStatement(
                select_items=items,
                from_items=[ast.TableRef(op.table.name, alias)],
            )
            return statement, alias

        if isinstance(op, LogicalSelect):
            child_stmt, _ = self.generate(node.children[0], depth + 1)
            alias = self._next_alias(depth)
            qualifiers = {
                var.id: alias for var in node.children[0].output_columns
            }
            items = [
                ast.SelectItem(ast.ColumnRef(self.name_map[var.id], alias),
                               self.name_map[var.id])
                for var in node.output_columns
            ]
            return ast.SelectStatement(
                select_items=items,
                from_items=[ast.DerivedTable(child_stmt, alias)],
                where=self.render_scalar(op.predicate, qualifiers),
            ), alias

        if isinstance(op, LogicalProject):
            child_stmt, _ = self.generate(node.children[0], depth + 1)
            alias = self._next_alias(depth)
            qualifiers = {
                var.id: alias for var in node.children[0].output_columns
            }
            items = [
                ast.SelectItem(self.render_scalar(expr, qualifiers),
                               self.name_map[var.id])
                for var, expr in op.outputs
            ]
            return ast.SelectStatement(
                select_items=items,
                from_items=[ast.DerivedTable(child_stmt, alias)],
            ), alias

        if isinstance(op, LogicalJoin):
            return self._generate_join(node, op, depth)

        if isinstance(op, LogicalGroupBy):
            child_stmt, _ = self.generate(node.children[0], depth + 1)
            alias = self._next_alias(depth)
            qualifiers = {
                var.id: alias for var in node.children[0].output_columns
            }
            items = [
                ast.SelectItem(ast.ColumnRef(self.name_map[key.id], alias),
                               self.name_map[key.id])
                for key in op.keys
            ]
            for var, agg in op.aggregates:
                items.append(ast.SelectItem(
                    self.render_scalar(agg, qualifiers),
                    self.name_map[var.id]))
            return ast.SelectStatement(
                select_items=items,
                from_items=[ast.DerivedTable(child_stmt, alias)],
                group_by=[
                    ast.ColumnRef(self.name_map[key.id], alias)
                    for key in op.keys
                ],
            ), alias

        if isinstance(op, LogicalUnionAll):
            branch_statements = []
            for child, branch in zip(node.children, op.branch_columns):
                child_stmt, _ = self.generate(child, depth + 1)
                alias = self._next_alias(depth)
                qualifiers = {
                    var.id: alias for var in child.output_columns}
                items = [
                    ast.SelectItem(
                        self.render_scalar(source_var, qualifiers),
                        self.name_map[out_var.id])
                    for out_var, source_var in zip(op.outputs, branch)
                ]
                branch_statements.append(ast.SelectStatement(
                    select_items=items,
                    from_items=[ast.DerivedTable(child_stmt, alias)],
                ))
            return ast.UnionSelect(branch_statements), self._next_alias(depth)

        raise PdwOptimizerError(
            f"cannot generate SQL for {type(op).__name__}")

    def _get_column_name(self, op: LogicalGet, var: ex.ColumnVar) -> str:
        # Base-table vars carry the base column name; temp tables staged
        # by earlier DSQL steps were created with the emitted names.
        if op.table.is_temp:
            return self.name_map[var.id]
        return var.name

    def _generate_join(self, node: PlanNode, op: LogicalJoin,
                       depth: int) -> Tuple[ast.SelectStatement, str]:
        left_node, right_node = node.children
        left_stmt, _ = self.generate(left_node, depth + 1)
        right_stmt, _ = self.generate(right_node, depth + 1)
        left_alias = self._next_alias(depth)
        right_alias = self._next_alias(depth)
        qualifiers = {var.id: left_alias for var in left_node.output_columns}
        for var in right_node.output_columns:
            qualifiers.setdefault(var.id, right_alias)

        if op.kind in (JoinKind.INNER, JoinKind.LEFT, JoinKind.CROSS):
            items = [
                ast.SelectItem(
                    ast.ColumnRef(self.name_map[var.id], qualifiers[var.id]),
                    self.name_map[var.id])
                for var in node.output_columns
            ]
            join_kind = "CROSS" if op.kind is JoinKind.CROSS else \
                ("LEFT" if op.kind is JoinKind.LEFT else "INNER")
            condition = (self.render_scalar(op.predicate, qualifiers)
                         if op.predicate is not None else None)
            join_item = ast.JoinClause(
                join_kind,
                ast.DerivedTable(left_stmt, left_alias),
                ast.DerivedTable(right_stmt, right_alias),
                condition,
            )
            return ast.SelectStatement(select_items=items,
                                       from_items=[join_item]), left_alias

        # SEMI / ANTI: rendered via EXISTS, restricted to left columns.
        items = [
            ast.SelectItem(
                ast.ColumnRef(self.name_map[var.id], left_alias),
                self.name_map[var.id])
            for var in node.output_columns
        ]
        inner = ast.SelectStatement(
            select_items=[ast.SelectItem(ast.Literal(1))],
            from_items=[ast.DerivedTable(right_stmt, right_alias)],
            where=(self.render_scalar(op.predicate, qualifiers)
                   if op.predicate is not None else None),
        )
        exists = ast.ExistsExpr(inner, negated=op.kind is JoinKind.ANTI)
        return ast.SelectStatement(
            select_items=items,
            from_items=[ast.DerivedTable(left_stmt, left_alias)],
            where=exists,
        ), left_alias


def plan_fragment_to_sql(node: PlanNode,
                         name_map: Dict[int, str],
                         order_by: Optional[List[Tuple[ex.ColumnVar, bool]]] = None,
                         limit: Optional[int] = None,
                         output_names: Optional[List[str]] = None,
                         output_vars: Optional[List[ex.ColumnVar]] = None,
                         ) -> str:
    """Render a relational fragment as SQL text.

    ``output_names``/``output_vars`` re-alias the outermost select list to
    user-facing names (used by the final Return step); ``order_by`` and
    ``limit`` are appended at the outermost level.
    """
    generator = SqlGenerator(name_map)
    statement, alias = generator.generate(node)

    if output_vars is not None and output_names is not None:
        inner_alias = "T0_1"
        items = [
            ast.SelectItem(ast.ColumnRef(name_map[var.id], inner_alias),
                           name)
            for var, name in zip(output_vars, output_names)
        ]
        statement = ast.SelectStatement(
            select_items=items,
            from_items=[ast.DerivedTable(statement, inner_alias)],
        )
        alias = inner_alias

    if order_by:
        statement.order_by = [
            ast.OrderItem(ast.ColumnRef(_order_name(var, name_map,
                                                    output_vars,
                                                    output_names)),
                          ascending)
            for var, ascending in order_by
        ]
    if limit is not None:
        statement.limit = limit
    return statement.to_sql()


def _order_name(var: ex.ColumnVar, name_map: Dict[int, str],
                output_vars, output_names) -> str:
    if output_vars is not None and output_names is not None:
        for out_var, name in zip(output_vars, output_names):
            if out_var.id == var.id:
                return name
    return name_map[var.id]
