"""Bottom-up PDW plan enumeration (paper §3.2, Figure 4 steps 05-09).

For every MEMO group, in bottom-up order:

* **Enumeration step (06.i)** — combine the PDW options of the child
  groups through each logical group expression, keeping only combinations
  whose distributions allow the operation to run without data movement
  (collocated joins, key-aligned aggregations, ...).
* **Cost-based pruning (06.ii)** — keep the overall cheapest option plus
  the cheapest option per interesting property, so a group never holds
  more than ``#interesting properties + 1`` options.
* **Enforcer step (07)** — for each interesting property not yet
  satisfied, add a data-movement expression (Shuffle / Broadcast / Trim /
  PartitionMove / ...) on top of the cheapest source option.

Costs are pure DMS response times (§3.3): relational work on the compute
nodes is *not* costed, mirroring the paper's "DMS-only" model.  An
extended model that adds relational costs is available for the ablation
benchmarks (``PdwConfig.relational_cost_weight``).

The result is a :class:`repro.algebra.physical.PlanNode` tree mixing
logical relational operators (executed as SQL on the nodes) with
:class:`repro.pdw.dms.DataMovement` nodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    AggPhase,
    JoinKind,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalProject,
    LogicalSelect,
    LogicalUnionAll,
)
from repro.algebra.physical import PlanNode
from repro.algebra.properties import (
    ColumnEquivalence,
    DistKind,
    Distribution,
    ON_CONTROL_DIST,
    REPLICATED_DIST,
    hashed_on,
)
from repro.catalog.schema import DistributionKind
from repro.common.errors import HintError, PdwOptimizerError
from repro.obs.opt_trace import (
    MovementRecord,
    NULL_OPT_TRACE,
    OptimizerTrace,
    format_property_key,
)
from repro.optimizer.memo import GroupExpression, Memo, topological_order
from repro.pdw.cost_model import CostConstants, DEFAULT_COST_CONSTANTS, DmsCostModel
from repro.pdw.dms import DataMovement, classify_movement
from repro.algebra.properties import distribution_satisfies
from repro.pdw.interesting import (
    CONTROL_KEY,
    PropertyKey,
    REPLICATED_KEY,
    build_equivalence,
    concrete_hash_column,
    derive_interesting_properties,
    property_key_of,
)
from repro.pdw.preprocess import preprocess
from repro.telemetry import NULL_TRACER, Tracer


@dataclass
class PdwConfig:
    """Knobs for the PDW enumeration.

    ``hints`` implements the paper's §3.1 "handful of query hints for
    specific distributed execution strategies": a map from base-table name
    to a forced movement strategy for that table's stream —
    ``"replicate"`` (broadcast it wherever it is consumed) or
    ``"shuffle"`` (never replicate it; repartition instead).
    """

    prune_per_property: bool = True   # Figure 4 step 06.ii (ablation knob)
    relational_cost_weight: float = 0.0  # 0 = paper's DMS-only model
    hints: Dict[str, str] = field(default_factory=dict)
    constants: CostConstants = field(
        default_factory=lambda: DEFAULT_COST_CONSTANTS)

    def __post_init__(self):
        for table, strategy in self.hints.items():
            if strategy not in ("replicate", "shuffle"):
                raise HintError(
                    f"unknown hint {strategy!r} for table {table!r} "
                    "(use 'replicate' or 'shuffle')")


class PdwOption:
    """One PDW group expression: a plan fragment with a distribution.

    ``op`` is a logical operator or a :class:`DataMovement`; ``children``
    are PdwOptions (structural sharing keeps memory linear in the number
    of retained options).
    """

    __slots__ = ("op", "children", "group_id", "distribution", "cost")

    def __init__(self, op, children: Tuple["PdwOption", ...], group_id: int,
                 distribution: Distribution, cost: float):
        self.op = op
        self.children = children
        self.group_id = group_id
        self.distribution = distribution
        self.cost = cost


@dataclass
class PdwPlan:
    """The optimizer's answer: the winning option materialized as a tree."""

    root: PlanNode
    cost: float
    distribution: Distribution
    options_considered: int
    options_retained: int

    def tree_string(self) -> str:
        return self.root.tree_string()


class PdwOptimizer:
    """Figure 2 component 4: consumes the search space, adds movement."""

    def __init__(self, memo: Memo, root_group: int, node_count: int,
                 equivalence: Optional[ColumnEquivalence] = None,
                 config: Optional[PdwConfig] = None,
                 tracer: Tracer = NULL_TRACER,
                 opt_trace: OptimizerTrace = NULL_OPT_TRACE):
        self.memo = memo
        self.root_group = memo.find(root_group)
        self.node_count = node_count
        self.config = config or PdwConfig()
        self.cost_model = DmsCostModel(node_count, self.config.constants)
        self.equivalence = equivalence or build_equivalence(memo, root_group)
        self.options: Dict[int, List[PdwOption]] = {}
        self.options_considered = 0
        self.tracer = tracer
        self.opt_trace = opt_trace

    # -- public API -----------------------------------------------------------

    def optimize(self) -> PdwPlan:
        """Run steps 01-09 of Figure 4 and extract the optimal plan."""
        tracer = self.tracer
        opt_trace = self.opt_trace
        started = time.perf_counter() if opt_trace.enabled else 0.0
        with tracer.span("preprocess"):
            pdw_exprs = preprocess(self.memo, self.node_count)   # steps 02-03
        with tracer.span("interesting_properties") as span:
            self.interesting = derive_interesting_properties(    # step 04
                self.memo, self.root_group, self.equivalence)
            if tracer.enabled:
                span.set("properties",
                         sum(len(v) for v in self.interesting.values()))

        with tracer.span("enumerate") as span:
            order = topological_order(self.memo, self.root_group)
            for group_id in order:
                self._optimize_group(group_id, pdw_exprs)        # steps 05-07
            if tracer.enabled:
                span.set("groups", len(order))

        root_options = self.options.get(self.root_group, [])
        if not root_options:
            raise PdwOptimizerError("no distributed plan found for root")
        best = min(root_options, key=lambda o: o.cost)           # step 08
        plan = self._materialize(best)                            # steps 08-09
        retained = sum(len(opts) for opts in self.options.values())
        if tracer.enabled:
            tracer.count("pdw.groups_enumerated", len(order))
            tracer.count("pdw.alternatives.generated",
                         self.options_considered)
            tracer.count("pdw.alternatives.retained", retained)
            tracer.count("pdw.alternatives.pruned",
                         self.options_considered - retained)
        if opt_trace.enabled:
            opt_trace.finish(
                plan_cost=best.cost,
                plan_distribution=str(best.distribution),
                optimize_seconds=time.perf_counter() - started)
        return PdwPlan(
            root=plan,
            cost=best.cost,
            distribution=best.distribution,
            options_considered=self.options_considered,
            options_retained=retained,
        )

    def options_for(self, group_id: int) -> List[PdwOption]:
        return self.options.get(self.memo.find(group_id), [])

    # -- per-group optimization ---------------------------------------------------

    def _optimize_group(self, group_id: int,
                        pdw_exprs: Dict[int, List[GroupExpression]]) -> None:
        group = self.memo.group(group_id)
        opt_trace = self.opt_trace
        if opt_trace.enabled:
            opt_trace.begin_group(group_id, tuple(
                format_property_key(key)
                for key in self.interesting.get(group_id, ())))
        candidates: List[PdwOption] = []
        for expr in pdw_exprs.get(group_id, ()):
            children = [self.memo.find(c) for c in expr.children]
            if group_id in children:
                continue
            produced = self._enumerate_expression(group_id, expr, children)
            if opt_trace.enabled:
                opt_trace.record_enumeration(group_id, expr.op.describe(),
                                             len(produced))
            candidates.extend(produced)
        considered_before = self.options_considered
        self.options_considered += len(candidates)
        pruned = self._prune(group_id, candidates)               # step 06.ii
        pruned = self._enforce(group_id, pruned)                 # step 07
        pruned = self._apply_hints(group_id, pruned)             # §3.1 hints
        self.options[group_id] = pruned
        if opt_trace.enabled:
            opt_trace.end_group(
                group_id,
                considered=self.options_considered - considered_before,
                retained=tuple(
                    (self._describe_option(o),
                     format_property_key(property_key_of(
                         o.distribution, self.equivalence)),
                     o.cost)
                    for o in pruned))

    def _enumerate_expression(self, group_id: int, expr: GroupExpression,
                              children: List[int]) -> List[PdwOption]:
        op = expr.op

        if isinstance(op, LogicalGet):
            return [self._get_option(group_id, op)]

        if isinstance(op, (LogicalSelect, LogicalProject)):
            return [
                PdwOption(op, (child,), group_id, child.distribution,
                          child.cost)
                for child in self.options.get(children[0], ())
            ]

        if isinstance(op, LogicalJoin):
            return self._join_options(group_id, op, children)

        if isinstance(op, LogicalGroupBy):
            return self._groupby_options(group_id, op, children)

        if isinstance(op, LogicalUnionAll):
            return self._union_options(group_id, op, children)

        return []

    def _get_option(self, group_id: int, op: LogicalGet) -> PdwOption:
        table = op.table
        dist_kind = table.distribution.kind
        if dist_kind is DistributionKind.REPLICATED:
            distribution = REPLICATED_DIST
        elif dist_kind is DistributionKind.CONTROL:
            distribution = ON_CONTROL_DIST
        else:
            columns = []
            for dist_col in table.distribution.columns:
                var = next(
                    (v for v in op.columns
                     if v.name.lower() == dist_col.lower()), None)
                if var is None:
                    raise PdwOptimizerError(
                        f"distribution column {dist_col!r} of "
                        f"{table.name!r} missing from Get")
                columns.append(var.id)
            distribution = Distribution(DistKind.HASHED, tuple(columns))
        return PdwOption(op, (), group_id, distribution, 0.0)

    # -- joins ----------------------------------------------------------------------

    def _join_options(self, group_id: int, op: LogicalJoin,
                      children: List[int]) -> List[PdwOption]:
        left_options = self.options.get(children[0], ())
        right_options = self.options.get(children[1], ())
        left_group = self.memo.group(children[0])
        right_group = self.memo.group(children[1])
        left_ids = frozenset(v.id for v in left_group.output_vars)
        right_ids = frozenset(v.id for v in right_group.output_vars)
        pairs = ex.equi_join_pairs(op.predicate, left_ids, right_ids)

        result: List[PdwOption] = []
        for left in left_options:
            for right in right_options:
                distribution = self._join_output_distribution(
                    op.kind, left.distribution, right.distribution, pairs)
                if distribution is None:
                    continue
                cost = left.cost + right.cost + self._relational_cost(
                    group_id)
                result.append(PdwOption(op, (left, right), group_id,
                                        distribution, cost))
        return result

    def _join_output_distribution(
            self, kind: JoinKind, left: Distribution, right: Distribution,
            pairs: Sequence[Tuple[ex.ColumnVar, ex.ColumnVar]]
    ) -> Optional[Distribution]:
        """Output distribution of a collocated join; None if data must
        move first."""
        hashed_aligned = self._hash_aligned(left, right, pairs)

        if kind in (JoinKind.INNER, JoinKind.CROSS):
            if left.kind is DistKind.REPLICATED:
                return right
            if right.kind is DistKind.REPLICATED:
                return left
            if hashed_aligned:
                return left
            if (left.kind is DistKind.ON_CONTROL
                    and right.kind is DistKind.ON_CONTROL):
                return ON_CONTROL_DIST
            return None

        # LEFT / SEMI / ANTI: the left side is preserved; the right side
        # must be visible in full wherever left rows live.
        if right.kind is DistKind.REPLICATED:
            if left.kind is DistKind.REPLICATED:
                return REPLICATED_DIST
            if left.kind in (DistKind.HASHED, DistKind.SINGLE_NODE):
                return left
            if left.kind is DistKind.ON_CONTROL:
                # Replicated tables live on compute nodes, not on the
                # control node.
                return None
        if hashed_aligned:
            return left
        if (left.kind is DistKind.ON_CONTROL
                and right.kind is DistKind.ON_CONTROL):
            return ON_CONTROL_DIST
        return None

    def _hash_aligned(self, left: Distribution, right: Distribution,
                      pairs) -> bool:
        if left.kind is not DistKind.HASHED or \
                right.kind is not DistKind.HASHED:
            return False
        if len(left.columns) != len(right.columns):
            return False

        def matches(left_col: int, right_col: int) -> bool:
            for left_var, right_var in pairs:
                left_ok = self.equivalence.are_equivalent(
                    left_col, left_var.id)
                right_ok = self.equivalence.are_equivalent(
                    right_col, right_var.id)
                if left_ok and right_ok:
                    return True
                # pairs are oriented (left side, right side) but hashing
                # might align crosswise through equivalence.
                if (self.equivalence.are_equivalent(left_col, right_var.id)
                        and self.equivalence.are_equivalent(
                            right_col, left_var.id)):
                    return True
            return False

        return all(
            matches(lc, rc)
            for lc, rc in zip(left.columns, right.columns)
        )

    # -- aggregation -------------------------------------------------------------------

    def _groupby_options(self, group_id: int, op: LogicalGroupBy,
                         children: List[int]) -> List[PdwOption]:
        result: List[PdwOption] = []
        for child in self.options.get(children[0], ()):
            dist = child.distribution
            if op.phase is AggPhase.LOCAL:
                # Partial aggregation runs wherever the data sits.
                result.append(PdwOption(op, (child,), group_id, dist,
                                        child.cost
                                        + self._relational_cost(group_id)))
                continue
            output = self._aggregation_output_distribution(op, dist)
            if output is not None:
                result.append(PdwOption(op, (child,), group_id, output,
                                        child.cost
                                        + self._relational_cost(group_id)))
        return result

    def _aggregation_output_distribution(
            self, op: LogicalGroupBy,
            child: Distribution) -> Optional[Distribution]:
        """Distribution of a COMPLETE/GLOBAL aggregation when the child's
        placement already groups rows correctly; None otherwise."""
        if child.kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE,
                          DistKind.REPLICATED):
            return child
        if child.kind is DistKind.HASHED and op.keys:
            key_ids = [k.id for k in op.keys]
            aligned = all(
                any(self.equivalence.are_equivalent(hash_col, key_id)
                    for key_id in key_ids)
                for hash_col in child.columns
            )
            if aligned:
                # Rename hash columns onto the keys they match so parents
                # see a distribution expressed in output columns.
                renamed = []
                for hash_col in child.columns:
                    match = next(
                        (key_id for key_id in key_ids
                         if self.equivalence.are_equivalent(hash_col,
                                                            key_id)),
                        hash_col)
                    renamed.append(match)
                return Distribution(DistKind.HASHED, tuple(renamed))
        return None

    # -- union --------------------------------------------------------------------------

    def _union_options(self, group_id: int, op: LogicalUnionAll,
                       children: List[int]) -> List[PdwOption]:
        """A union is well-placed when every branch shares a placement
        expressed in *output positions*: all branches hashed on the same
        output position p (each on its own column feeding p), or all
        replicated, or all on the control node.

        Branches that do not yet satisfy a target are moved — the union
        performs its own per-branch enforcement, since branch columns are
        not value-equivalent and the generic enforcer cannot relate them.
        """
        child_lists = [self.options.get(c, ()) for c in children]
        if not all(child_lists):
            return []

        targets: List[Tuple[Distribution, List[Distribution]]] = []
        for position in range(len(op.outputs)):
            branch_targets = [
                hashed_on(branch[position].id)
                for branch in op.branch_columns
            ]
            targets.append(
                (hashed_on(op.outputs[position].id), branch_targets))
        targets.append(
            (REPLICATED_DIST, [REPLICATED_DIST] * len(children)))
        targets.append(
            (ON_CONTROL_DIST, [ON_CONTROL_DIST] * len(children)))

        result: List[PdwOption] = []
        opt_trace = self.opt_trace
        for output_dist, branch_targets in targets:
            picked: List[PdwOption] = []
            total = 0.0
            feasible = True
            for child_id, options, target, branch in zip(
                    children, child_lists, branch_targets,
                    op.branch_columns):
                best: Optional[PdwOption] = None
                moves = [] if opt_trace.enabled else None
                best_move_index = -1
                for option in options:
                    moved = None
                    if distribution_satisfies(option.distribution, target,
                                              self.equivalence):
                        candidate = option
                    else:
                        hash_columns = (
                            next(v for v in branch
                                 if v.id == target.columns[0]),
                        ) if target.kind is DistKind.HASHED else ()
                        movement = classify_movement(
                            option.distribution, target, hash_columns)
                        if movement is None:
                            continue
                        child_group = self.memo.group(child_id)
                        if moves is None:
                            breakdown = None
                            move_cost = self.cost_model.cost(
                                movement, child_group.cardinality,
                                child_group.row_width)
                        else:
                            breakdown = self.cost_model.cost_breakdown(
                                movement, child_group.cardinality,
                                child_group.row_width)
                            move_cost = breakdown.total
                        self.tracer.count("pdw.cost_model.invocations")
                        candidate = PdwOption(
                            movement, (option,), child_id, target,
                            option.cost + move_cost)
                        moved = (movement, breakdown, move_cost,
                                 candidate.cost)
                    is_best = best is None or candidate.cost < best.cost
                    if is_best:
                        best = candidate
                    if moves is not None and is_best:
                        best_move_index = (len(moves) if moved is not None
                                           else -1)
                    if moves is not None and moved is not None:
                        moves.append(moved)
                if moves:
                    branch_group = self.memo.group(child_id)
                    key_str = format_property_key(
                        property_key_of(target, self.equivalence))
                    for index, (movement, breakdown, move_cost,
                                cand_total) in enumerate(moves):
                        opt_trace.record_movement(MovementRecord(
                            group=child_id,
                            operation=movement.operation.value,
                            movement=movement.describe(),
                            property_key=key_str,
                            source=str(movement.source),
                            target=str(movement.target),
                            rows=branch_group.cardinality,
                            row_width=branch_group.row_width,
                            reader=breakdown.reader,
                            network=breakdown.network,
                            writer=breakdown.writer,
                            bulk_copy=breakdown.bulk_copy,
                            move_cost=move_cost,
                            total_cost=cand_total,
                            chosen=index == best_move_index,
                            context="union",
                        ))
                if best is None:
                    feasible = False
                    break
                picked.append(best)
                total += best.cost
            if feasible:
                result.append(PdwOption(op, tuple(picked), group_id,
                                        output_dist, total))
        return result

    # -- pruning & enforcement --------------------------------------------------------

    def _prune(self, group_id: int,
               candidates: List[PdwOption]) -> List[PdwOption]:
        """Figure 4 step 06.ii."""
        if not candidates:
            return []
        if not self.config.prune_per_property:
            return sorted(candidates, key=lambda o: o.cost)
        best_overall = min(candidates, key=lambda o: o.cost)
        interesting = self.interesting.get(group_id, set())
        best_by_key: Dict[PropertyKey, PdwOption] = {}
        for option in candidates:
            key = property_key_of(option.distribution, self.equivalence)
            if key not in interesting:
                continue
            current = best_by_key.get(key)
            if current is None or option.cost < current.cost:
                best_by_key[key] = option
        kept = {id(best_overall): best_overall}
        for option in best_by_key.values():
            kept[id(option)] = option
        if self.tracer.enabled:
            for option in candidates:
                if id(option) not in kept:
                    key = property_key_of(option.distribution,
                                          self.equivalence)
                    self.tracer.count(f"pdw.pruned.{key[0]}")
        if self.opt_trace.enabled:
            for option in candidates:
                if id(option) in kept:
                    continue
                key = property_key_of(option.distribution,
                                      self.equivalence)
                # The option that covers the victim's slot: the cheapest
                # retained option delivering the same property, else the
                # overall winner.
                survivor = best_by_key.get(key, best_overall)
                self.opt_trace.record_prune(
                    group_id,
                    victim=self._describe_option(option),
                    property_key=format_property_key(key),
                    victim_cost=option.cost,
                    survivor=self._describe_option(survivor),
                    survivor_cost=survivor.cost)
        return sorted(kept.values(), key=lambda o: o.cost)

    def _enforce(self, group_id: int,
                 options: List[PdwOption]) -> List[PdwOption]:
        """Figure 4 step 07: add DMS expressions per interesting property."""
        if not options:
            return options
        group = self.memo.group(group_id)
        opt_trace = self.opt_trace
        interesting = self.interesting.get(group_id, set())
        additions: List[PdwOption] = []
        for key in sorted(interesting, key=repr):
            target, hash_columns = self._target_for_key(group_id, key)
            if target is None:
                continue
            best: Optional[PdwOption] = None
            best_index = -1
            candidates = [] if opt_trace.enabled else None
            for option in options:
                if property_key_of(option.distribution,
                                   self.equivalence) == key:
                    continue  # already delivers the property
                movement = classify_movement(option.distribution, target,
                                             hash_columns)
                if movement is None:
                    continue
                if candidates is None:
                    breakdown = None
                    move_cost = self.cost_model.cost(
                        movement, group.cardinality, group.row_width)
                else:
                    # Same arithmetic as cost(): total is the max of the
                    # components, so traced and untraced runs agree
                    # bit-for-bit.
                    breakdown = self.cost_model.cost_breakdown(
                        movement, group.cardinality, group.row_width)
                    move_cost = breakdown.total
                self.tracer.count("pdw.cost_model.invocations")
                total = option.cost + move_cost
                if best is None or total < best.cost:
                    best = PdwOption(movement, (option,), group_id, target,
                                     total)
                    if candidates is not None:
                        best_index = len(candidates)
                if candidates is not None:
                    candidates.append((movement, breakdown, move_cost,
                                       total))
            if best is not None:
                additions.append(best)
                self.tracer.count("pdw.enforcers.added")
                self.options_considered += 1
            if candidates:
                key_str = format_property_key(key)
                for index, (movement, breakdown, move_cost,
                            total) in enumerate(candidates):
                    opt_trace.record_movement(MovementRecord(
                        group=group_id,
                        operation=movement.operation.value,
                        movement=movement.describe(),
                        property_key=key_str,
                        source=str(movement.source),
                        target=str(movement.target),
                        rows=group.cardinality,
                        row_width=group.row_width,
                        reader=breakdown.reader,
                        network=breakdown.network,
                        writer=breakdown.writer,
                        bulk_copy=breakdown.bulk_copy,
                        move_cost=move_cost,
                        total_cost=total,
                        chosen=index == best_index,
                    ))
        if not additions:
            return options
        return self._prune(group_id, options + additions)

    def _apply_hints(self, group_id: int,
                     options: List[PdwOption]) -> List[PdwOption]:
        """§3.1 query hints: constrain the movement strategy for streams
        that are pure pipelines over a hinted base table."""
        if not self.config.hints or not options:
            return options
        table = self._source_table(group_id)
        if table is None:
            return options
        hint = self.config.hints.get(table)
        if hint is None:
            return options

        def moved_to(option: PdwOption) -> Optional[DistKind]:
            if isinstance(option.op, DataMovement):
                return option.op.target.kind
            return None

        if hint == "replicate":
            kept = [o for o in options
                    if moved_to(o) is not DistKind.HASHED]
        else:  # "shuffle"
            kept = [o for o in options
                    if moved_to(o) is not DistKind.REPLICATED]
        if self.opt_trace.enabled and kept and len(kept) < len(options):
            kept_ids = {id(o) for o in kept}
            displaced = [o for o in options if id(o) not in kept_ids]
            self.opt_trace.record_hint_override(
                group_id, table, hint,
                displaced=tuple(self._describe_option(o)
                                for o in displaced),
                displaced_costs=tuple(o.cost for o in displaced),
                kept=len(kept))
        return kept or options  # never hint a group into infeasibility

    def _source_table(self, group_id: int) -> Optional[str]:
        """Base table when the group is a pure Get/Select/Project
        pipeline over exactly one table; None otherwise (memoized)."""
        cache = getattr(self, "_source_table_cache", None)
        if cache is None:
            cache = self._source_table_cache = {}
        group_id = self.memo.find(group_id)
        if group_id in cache:
            return cache[group_id]
        cache[group_id] = None  # cycle guard
        tables: Set[Optional[str]] = set()
        group = self.memo.group(group_id)
        for expr in group.logical_expressions:
            op = expr.op
            if isinstance(op, LogicalGet):
                tables.add(op.table.name.lower())
            elif isinstance(op, (LogicalSelect, LogicalProject)) \
                    and expr.children:
                tables.add(self._source_table(expr.children[0]))
            else:
                tables.add(None)
        result = tables.pop() if len(tables) == 1 else None
        cache[group_id] = result
        return result

    def _target_for_key(self, group_id: int, key: PropertyKey
                        ) -> Tuple[Optional[Distribution],
                                   Tuple[ex.ColumnVar, ...]]:
        if key == REPLICATED_KEY:
            return REPLICATED_DIST, ()
        if key == CONTROL_KEY:
            return ON_CONTROL_DIST, ()
        if key[0] == "hash":
            try:
                var = concrete_hash_column(self.memo, group_id, key[1],
                                           self.equivalence)
            except KeyError:
                return None, ()
            return hashed_on(var.id), (var,)
        return None, ()

    # -- trace plumbing ----------------------------------------------------------------

    @staticmethod
    def _describe_option(option: PdwOption) -> str:
        """Stable short label for trace records: operator @ placement."""
        return f"{option.op.describe()} @ {option.distribution}"

    # -- costs ---------------------------------------------------------------------------

    def _relational_cost(self, group_id: int) -> float:
        """Optional extended-model term (0 under the paper's model)."""
        weight = self.config.relational_cost_weight
        if weight <= 0.0:
            return 0.0
        group = self.memo.group(group_id)
        per_node_rows = group.cardinality / self.node_count
        return weight * per_node_rows * group.row_width

    # -- plan materialization ---------------------------------------------------------

    def _materialize(self, option: PdwOption) -> PlanNode:
        children = [self._materialize(c) for c in option.children]
        group = self.memo.group(option.group_id)
        return PlanNode(
            option.op,
            children,
            output_columns=group.output_vars,
            cardinality=group.cardinality,
            row_width=group.row_width,
            cost=option.cost,
        )
