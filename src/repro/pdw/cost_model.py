"""The PDW cost model (paper §3.3).

Only data-movement operations are costed, in terms of response time:

* every component cost is ``C_X = B · λ_X`` where ``B`` is raw bytes
  processed by that component and ``λ_X`` its calibrated per-byte cost
  (§3.3.3);
* the reader has two constants, ``λ_hash`` and ``λ_direct``, because
  hashing rows (Shuffle, Trim) costs extra;
* components compose with ``max`` because each side is asynchronous:

  - ``C_source = max(C_reader, C_network)``
  - ``C_target = max(C_writer, C_SQLBlkCpy)``
  - ``C_DMS    = max(C_source, C_target)``

* under the uniformity and homogeneity assumptions only one node need be
  considered; a distributed stream carries ``Y·w/N`` bytes per node and a
  replicated stream ``Y·w`` (§3.3.3).

The byte streams seen by each component differ per DMS operation; the
table in :meth:`DmsCostModel.component_bytes` spells out the model used
here (per node, under uniformity):

====================  ==========  ==========  ==========  ==========
operation             reader      network     writer      bulk copy
====================  ==========  ==========  ==========  ==========
Shuffle               Y·w/N       Y·w/N       Y·w/N       Y·w/N
Partition move        Y·w/N       Y·w/N       Y·w         Y·w
Control-node move     Y·w         Y·w·N       Y·w         Y·w
Broadcast             Y·w/N       Y·w         Y·w         Y·w
Trim                  Y·w         —           Y·w/N       Y·w/N
Replicated broadcast  Y·w         Y·w·N       Y·w         Y·w
Remote copy           Y·w(/N)     Y·w(/N)     Y·w         Y·w
====================  ==========  ==========  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.algebra.properties import DistKind
from repro.common.errors import PdwOptimizerError
from repro.pdw.dms import DataMovement, DmsOperation


@dataclass(frozen=True)
class CostConstants:
    """The λ constants, in seconds per byte.

    Defaults are representative of the appliance simulator's ground truth;
    :mod:`repro.appliance.calibration` re-derives them from targeted
    performance runs exactly as §3.3.3 prescribes.
    """

    lambda_reader_direct: float = 1.0e-8
    lambda_reader_hash: float = 1.6e-8
    lambda_network: float = 2.5e-8
    lambda_writer: float = 1.2e-8
    lambda_bulk_copy: float = 3.0e-8

    def reader_lambda(self, uses_hashing: bool) -> float:
        return (self.lambda_reader_hash if uses_hashing
                else self.lambda_reader_direct)


DEFAULT_COST_CONSTANTS = CostConstants()


@dataclass(frozen=True)
class DmsCost:
    """A fully broken-down DMS cost (useful for tests and reports)."""

    reader: float
    network: float
    writer: float
    bulk_copy: float

    @property
    def source(self) -> float:
        return max(self.reader, self.network)

    @property
    def target(self) -> float:
        return max(self.writer, self.bulk_copy)

    @property
    def total(self) -> float:
        return max(self.source, self.target)


class DmsCostModel:
    """Costs DataMovement operators for an appliance of ``node_count``
    compute nodes."""

    def __init__(self, node_count: int,
                 constants: CostConstants = DEFAULT_COST_CONSTANTS):
        if node_count < 1:
            raise PdwOptimizerError("node_count must be >= 1")
        self.node_count = node_count
        self.constants = constants

    # -- byte streams -----------------------------------------------------------

    def component_bytes(self, movement: DataMovement, rows: float,
                        row_width: float) -> Tuple[float, float, float, float]:
        """Per-node bytes processed by (reader, network, writer, bulk copy).

        ``rows`` is the *global* cardinality Y of the moved stream and
        ``row_width`` the average row width w, both straight out of the
        MEMO statistics (§3.3.3).
        """
        n = float(self.node_count)
        total = max(0.0, rows) * max(1.0, row_width)
        per_node = total / n
        op = movement.operation

        if op is DmsOperation.SHUFFLE_MOVE:
            source_kind = movement.source.kind
            if source_kind in (DistKind.ON_CONTROL, DistKind.SINGLE_NODE):
                # Single reader spraying to all nodes.
                return (total, total, per_node, per_node)
            return (per_node, per_node, per_node, per_node)

        if op is DmsOperation.PARTITION_MOVE:
            return (per_node, per_node, total, total)

        if op is DmsOperation.CONTROL_NODE_MOVE:
            return (total, total * n, total, total)

        if op is DmsOperation.BROADCAST_MOVE:
            return (per_node, total, total, total)

        if op is DmsOperation.TRIM_MOVE:
            # Local hash-filtering of a replicated table; no network.
            return (total, 0.0, per_node, per_node)

        if op is DmsOperation.REPLICATED_BROADCAST:
            return (total, total * n, total, total)

        if op is DmsOperation.REMOTE_COPY:
            if movement.source.kind is DistKind.HASHED:
                return (per_node, per_node, total, total)
            return (total, total, total, total)

        raise PdwOptimizerError(f"unknown DMS operation {op}")

    # -- costing ------------------------------------------------------------------

    def cost_breakdown(self, movement: DataMovement, rows: float,
                       row_width: float) -> DmsCost:
        reader_bytes, network_bytes, writer_bytes, bulk_bytes = (
            self.component_bytes(movement, rows, row_width))
        constants = self.constants
        return DmsCost(
            reader=reader_bytes * constants.reader_lambda(
                movement.operation.uses_hashing),
            network=network_bytes * constants.lambda_network,
            writer=writer_bytes * constants.lambda_writer,
            bulk_copy=bulk_bytes * constants.lambda_bulk_copy,
        )

    def cost(self, movement: DataMovement, rows: float,
             row_width: float) -> float:
        """``C_DMS = max(C_source, C_target)`` in seconds."""
        return self.cost_breakdown(movement, rows, row_width).total

    def with_constants(self, constants: CostConstants) -> "DmsCostModel":
        return DmsCostModel(self.node_count, constants)
