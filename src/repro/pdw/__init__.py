"""The PDW query optimizer (the paper's contribution): bottom-up
enumeration with interesting distribution properties (§3.2), the seven
DMS operations and their cost model (§3.3), DSQL generation (§3.4), and
the engine façade tying the Figure 2 pipeline together."""

from repro.pdw.advisor import (
    AdvisorResult,
    PartitioningAdvisor,
    WorkloadQuery,
)
from repro.pdw.baseline import parallelize_serial_plan, physical_to_logical
from repro.pdw.cost_model import (
    CostConstants,
    DEFAULT_COST_CONSTANTS,
    DmsCost,
    DmsCostModel,
)
from repro.pdw.dms import DataMovement, DmsOperation, classify_movement
from repro.pdw.dsql import DsqlGenerator, DsqlPlan, DsqlStep, StepKind
from repro.pdw.engine import CompiledQuery, PdwEngine
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwOption, PdwPlan
from repro.pdw.topdown import TopDownPdwOptimizer

__all__ = [
    "AdvisorResult",
    "PartitioningAdvisor",
    "WorkloadQuery",
    "CompiledQuery",
    "CostConstants",
    "DEFAULT_COST_CONSTANTS",
    "DataMovement",
    "DmsCost",
    "DmsCostModel",
    "DmsOperation",
    "DsqlGenerator",
    "DsqlPlan",
    "DsqlStep",
    "PdwConfig",
    "PdwEngine",
    "PdwOption",
    "PdwOptimizer",
    "PdwPlan",
    "StepKind",
    "TopDownPdwOptimizer",
    "classify_movement",
    "parallelize_serial_plan",
    "physical_to_logical",
    "StepKind",
]
