"""Interesting distribution properties (paper §3.2, Figure 4 step 04).

*"Interesting properties in the PDW query optimizer represent an extension
of the notion of interesting orders introduced in System R ... the PDW
query optimizer considers the following columns to be interesting with
respect to data movements: (a) columns referenced in equality join
predicates, and (b) group-by columns."*

A property is identified by a hashable key:

* ``("hash", rep)`` — hash-distributed on (a column equivalent to) the
  equivalence-class representative ``rep``;
* ``("replicated",)`` — replicated on every compute node; interesting for
  any group that feeds a join, because replication always makes the join
  collocatable (the "Replicate" alternatives of Figure 3's move groups);
* ``("control",)`` — single copy on the control node; interesting for the
  root group and inputs of key-less (scalar) global aggregations.

Derivation is top-down (Figure 4 step 04): a group inherits the parent's
interesting columns that its output still carries, plus what its own
expressions introduce (join equi-columns routed per side, group-by keys
routed to the aggregation input).

The per-group option bound of step 06.ii —
``#options ≤ #interesting properties + 1`` — is stated in terms of these
keys.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.algebra import expressions as ex
from repro.algebra.logical import (
    AggPhase,
    LogicalGroupBy,
    LogicalJoin,
)
from repro.algebra.properties import ColumnEquivalence, DistKind, Distribution
from repro.optimizer.memo import Memo, topological_order

PropertyKey = Tuple
REPLICATED_KEY: PropertyKey = ("replicated",)
CONTROL_KEY: PropertyKey = ("control",)


def hash_key(equivalence: ColumnEquivalence, column_id: int) -> PropertyKey:
    return ("hash", equivalence.representative(column_id))


def property_key_of(distribution: Distribution,
                    equivalence: ColumnEquivalence) -> PropertyKey:
    """The property key a delivered distribution satisfies."""
    if distribution.kind is DistKind.HASHED:
        reps = tuple(sorted(
            equivalence.representative(c) for c in distribution.columns))
        if len(reps) == 1:
            return ("hash", reps[0])
        return ("hash-multi", reps)
    if distribution.kind is DistKind.REPLICATED:
        return REPLICATED_KEY
    if distribution.kind is DistKind.ON_CONTROL:
        return CONTROL_KEY
    return ("single",)


def build_equivalence(memo: Memo, root_group: int) -> ColumnEquivalence:
    """Reconstruct column equivalences from the memo's predicates.

    The PDW side receives only the XML search space, so it re-derives the
    equality closure from the join/select predicates it finds there.
    """
    equivalence = ColumnEquivalence()
    for group_id in topological_order(memo, root_group):
        for expr in memo.group(group_id).logical_expressions:
            predicate = getattr(expr.op, "predicate", None)
            if predicate is not None:
                equivalence.add_from_predicate(predicate)
    return equivalence


def derive_interesting_properties(memo: Memo, root_group: int,
                                  equivalence: ColumnEquivalence
                                  ) -> Dict[int, Set[PropertyKey]]:
    """Figure 4 step 04: map canonical group id → interesting properties."""
    order = topological_order(memo, root_group)
    interesting: Dict[int, Set[PropertyKey]] = {gid: set() for gid in order}
    interesting[memo.find(root_group)].add(CONTROL_KEY)

    for group_id in reversed(order):
        group = memo.group(group_id)
        inherited = interesting[group_id]
        for expr in group.logical_expressions:
            children = [memo.find(c) for c in expr.children]
            if group_id in children:
                continue
            op = expr.op

            if isinstance(op, LogicalJoin):
                for child_id in children:
                    interesting.setdefault(child_id, set()).add(
                        REPLICATED_KEY)
                if op.predicate is not None:
                    left_group = memo.group(children[0])
                    right_group = memo.group(children[1])
                    left_ids = frozenset(
                        v.id for v in left_group.output_vars)
                    right_ids = frozenset(
                        v.id for v in right_group.output_vars)
                    pairs = ex.equi_join_pairs(op.predicate, left_ids,
                                               right_ids)
                    for left_var, right_var in pairs:
                        interesting[children[0]].add(
                            hash_key(equivalence, left_var.id))
                        interesting[children[1]].add(
                            hash_key(equivalence, right_var.id))

            if isinstance(op, LogicalGroupBy):
                child_set = interesting.setdefault(children[0], set())
                if op.keys:
                    for key in op.keys:
                        child_set.add(hash_key(equivalence, key.id))
                elif op.phase in (AggPhase.GLOBAL, AggPhase.COMPLETE):
                    # Scalar aggregation: the input is either gathered on
                    # the control node or replicated (broadcasting a
                    # handful of partials lets every node hold the global
                    # value — ideal when the scalar feeds a join).
                    child_set.add(CONTROL_KEY)
                    child_set.add(REPLICATED_KEY)

            # Inheritance: pass down hash-column interest the child's
            # output still carries.
            for child_id in children:
                child_group = memo.group(child_id)
                child_reps = {
                    equivalence.representative(v.id)
                    for v in child_group.output_vars
                }
                child_set = interesting.setdefault(child_id, set())
                for key in inherited:
                    if key[0] == "hash" and key[1] in child_reps:
                        child_set.add(key)

    return interesting


def concrete_hash_column(memo: Memo, group_id: int, rep: int,
                         equivalence: ColumnEquivalence
                         ) -> ex.ColumnVar:
    """The lowest-id output column of the group in equivalence class
    ``rep`` (the concrete shuffle target for an enforced hash property)."""
    group = memo.group(group_id)
    candidates = [
        var for var in group.output_vars
        if equivalence.representative(var.id) == rep
    ]
    if not candidates:
        raise KeyError(
            f"group {group_id} has no output column in class {rep}")
    return min(candidates, key=lambda v: v.id)
