"""The PDW Engine: the full compilation pipeline of Figure 2.

``PdwEngine.compile`` walks the paper's numbered components:

1. **PDW parser** — parse and validate the query text.
2. **SQL Server compilation** — bind against the shell database, simplify,
   explore, implement (:class:`repro.optimizer.search.SerialOptimizer`).
3. **XML generator** — export the MEMO as XML.
4. **PDW query optimizer** — parse the XML back into a memo, run the
   bottom-up enumeration with the DMS cost model, extract the optimal
   distributed plan, and generate the DSQL plan.

The XML round-trip is performed for real on every compilation — the PDW
optimizer only ever sees the search space through the same serialized
interface the paper describes.

Every phase reports spans and counters into the engine's
:class:`repro.telemetry.Tracer` (default: the free no-op tracer); the
counters accumulated during one compilation are snapshotted onto the
returned :class:`CompiledQuery` so ``explain(verbose=True)`` can show the
memo/pruning breakdown without the caller holding the tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.algebra.physical import PlanNode
from repro.catalog.shell_db import ShellDatabase
from repro.common.errors import HintError
from repro.optimizer.memo import Memo
from repro.optimizer.memo_xml import memo_from_xml, memo_to_xml
from repro.obs.opt_trace import NULL_OPT_TRACE, OptimizerTrace
from repro.optimizer.search import (
    OptimizationResult,
    OptimizerConfig,
    SerialOptimizer,
)
from repro.pdw.dsql import DsqlGenerator, DsqlPlan
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwPlan
from repro.telemetry import NULL_TRACER, Tracer, counter_delta

VALID_HINT_STRATEGIES = ("replicate", "shuffle")


@dataclass
class CompiledQuery:
    """Everything the engine produced for one query."""

    sql: str
    serial: OptimizationResult
    memo_xml: str
    pdw_memo: Memo
    pdw_root_group: int
    pdw_plan: PdwPlan
    dsql_plan: DsqlPlan
    counters: Dict[str, float] = field(default_factory=dict)
    # The effective PDW config of this compilation (hints merged in) and
    # the search-space trace, when one was requested via
    # ``compile(opt_trace=...)``.
    pdw_config: Optional[PdwConfig] = None
    opt_trace: Optional[OptimizerTrace] = None

    @property
    def plan_cost(self) -> float:
        return self.pdw_plan.cost

    @property
    def serial_plan(self) -> Optional[PlanNode]:
        return self.serial.best_serial_plan

    def explain(self, verbose: bool = False) -> str:
        """Human-readable compilation summary.

        With ``verbose=True`` the summary is extended with the search-space
        and pruning counters of this compilation (memo sizes, alternatives
        generated vs. retained, XML interface bytes).
        """
        lines = [
            f"Query: {self.sql.strip()}",
            "",
            "Distributed plan "
            f"(DMS cost {self.pdw_plan.cost:.6f}s, "
            f"result {self.pdw_plan.distribution}):",
            self.pdw_plan.tree_string(),
            "",
            "DSQL plan:",
            self.dsql_plan.describe(),
        ]
        if verbose:
            lines += ["", "Compilation counters:"]
            for name, value in sorted(self.compile_counters().items()):
                rendered = (f"{value:.0f}" if value == int(value)
                            else f"{value:.6g}")
                lines.append(f"  {name:<36} {rendered}")
        return "\n".join(lines)

    def compile_counters(self) -> Dict[str, float]:
        """Search-space / pruning counters for this compilation.

        Structural counts are derived from the compiled artifacts, so they
        are available even when the engine ran with the no-op tracer;
        tracer-recorded counters (per-property pruning, cost-model
        invocations, phase extras) are merged in when present.
        """
        memo = self.pdw_memo
        derived = {
            "serial.memo.groups": float(len(memo.canonical_groups())),
            "serial.memo.expressions.logical": float(
                memo.expression_count(logical_only=True)),
            "serial.memo.expressions.physical": float(
                memo.expression_count()
                - memo.expression_count(logical_only=True)),
            "xml.serialized_bytes": float(
                len(self.memo_xml.encode("utf-8"))),
            "pdw.alternatives.generated": float(
                self.pdw_plan.options_considered),
            "pdw.alternatives.retained": float(
                self.pdw_plan.options_retained),
            "pdw.alternatives.pruned": float(
                self.pdw_plan.options_considered
                - self.pdw_plan.options_retained),
            "dsql.steps_emitted": float(len(self.dsql_plan.steps)),
            "dsql.dms_steps": float(len(self.dsql_plan.movement_steps)),
        }
        derived.update(self.counters)
        return derived


class PdwEngine:
    """Compiles SQL text into DSQL plans against a shell database."""

    def __init__(self, shell: ShellDatabase,
                 serial_config: Optional[OptimizerConfig] = None,
                 pdw_config: Optional[PdwConfig] = None,
                 tracer: Tracer = NULL_TRACER):
        self.shell = shell
        self.tracer = tracer
        self.serial_optimizer = SerialOptimizer(shell, serial_config,
                                                tracer=tracer)
        self.pdw_config = pdw_config or PdwConfig()

    def _validate_hints(self, hints: dict) -> Dict[str, str]:
        """§3.1 hints must name known tables and known strategies."""
        validated = {}
        for name, strategy in hints.items():
            lowered = name.lower()
            if not self.shell.catalog.has_table(lowered):
                raise HintError(
                    f"hint names unknown table {name!r} "
                    "(not in the shell database)")
            if strategy not in VALID_HINT_STRATEGIES:
                raise HintError(
                    f"unknown hint strategy {strategy!r} for table "
                    f"{name!r} (use 'replicate' or 'shuffle')")
            validated[lowered] = strategy
        return validated

    def compile(self, sql: str,
                extract_serial: bool = True,
                hints: Optional[dict] = None,
                opt_trace: OptimizerTrace = NULL_OPT_TRACE
                ) -> CompiledQuery:
        """Compile ``sql`` into a DSQL plan.

        ``hints`` maps base-table names to a forced movement strategy
        ('replicate' or 'shuffle') for this query only — the paper's
        §3.1 distributed-execution query hints.  Hints naming unknown
        tables or strategies raise :class:`repro.common.errors.HintError`.

        ``opt_trace`` (default: the no-op recorder) captures the PDW
        optimizer's search space — per-group enumeration, prune and
        enforce decisions, hint overrides — without changing the winning
        plan; the trace is attached to the returned
        :class:`CompiledQuery`.
        """
        tracer = self.tracer
        counters_before = (tracer.counter_snapshot() if tracer.enabled
                           else {})
        config = self.pdw_config
        if hints:
            config = replace(config, hints=self._validate_hints(hints))

        with tracer.span("compile") as compile_span:
            # Components 1-2: parse, bind, serial optimization on the
            # shell DB.
            with tracer.span("serial"):
                serial = self.serial_optimizer.optimize_sql(
                    sql, extract_serial=extract_serial)

            # Component 3: export the search space as XML ...
            xml_text = memo_to_xml(serial.memo, serial.root_group,
                                   serial.stats, tracer=tracer)
            # ... and parse it back on the PDW side (component 4's memo
            # parser).
            parsed = memo_from_xml(xml_text, self.shell, tracer=tracer)

            # Component 4: bottom-up PDW optimization.
            with tracer.span("pdw.optimize"):
                pdw_optimizer = PdwOptimizer(
                    parsed.memo, parsed.root_group,
                    node_count=self.shell.node_count,
                    config=config,
                    tracer=tracer,
                    opt_trace=opt_trace,
                )
                pdw_plan = pdw_optimizer.optimize()

            # DSQL generation.
            query = serial.query
            dsql_plan = DsqlGenerator().generate(
                pdw_plan.root,
                output_names=query.output_names,
                output_vars=query.output_columns(),
                order_by=query.order_by or None,
                limit=query.limit,
                final_distribution=pdw_plan.distribution,
                total_cost=pdw_plan.cost,
                tracer=tracer,
            )
            if tracer.enabled:
                compile_span.set("dms_cost_seconds", pdw_plan.cost)

        counters = (counter_delta(counters_before,
                                  tracer.counter_snapshot())
                    if tracer.enabled else {})
        return CompiledQuery(
            sql=sql,
            serial=serial,
            memo_xml=xml_text,
            pdw_memo=parsed.memo,
            pdw_root_group=parsed.root_group,
            pdw_plan=pdw_plan,
            dsql_plan=dsql_plan,
            counters=counters,
            pdw_config=config,
            opt_trace=opt_trace if opt_trace.enabled else None,
        )
