"""The PDW Engine: the full compilation pipeline of Figure 2.

``PdwEngine.compile`` walks the paper's numbered components:

1. **PDW parser** — parse and validate the query text.
2. **SQL Server compilation** — bind against the shell database, simplify,
   explore, implement (:class:`repro.optimizer.search.SerialOptimizer`).
3. **XML generator** — export the MEMO as XML.
4. **PDW query optimizer** — parse the XML back into a memo, run the
   bottom-up enumeration with the DMS cost model, extract the optimal
   distributed plan, and generate the DSQL plan.

The XML round-trip is performed for real on every compilation — the PDW
optimizer only ever sees the search space through the same serialized
interface the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.algebra.physical import PlanNode
from repro.catalog.shell_db import ShellDatabase
from repro.optimizer.memo import Memo
from repro.optimizer.memo_xml import memo_from_xml, memo_to_xml
from repro.optimizer.search import (
    OptimizationResult,
    OptimizerConfig,
    SerialOptimizer,
)
from repro.pdw.dsql import DsqlGenerator, DsqlPlan
from repro.pdw.enumerator import PdwConfig, PdwOptimizer, PdwPlan


@dataclass
class CompiledQuery:
    """Everything the engine produced for one query."""

    sql: str
    serial: OptimizationResult
    memo_xml: str
    pdw_memo: Memo
    pdw_root_group: int
    pdw_plan: PdwPlan
    dsql_plan: DsqlPlan

    @property
    def plan_cost(self) -> float:
        return self.pdw_plan.cost

    @property
    def serial_plan(self) -> Optional[PlanNode]:
        return self.serial.best_serial_plan

    def explain(self) -> str:
        """Human-readable compilation summary."""
        lines = [
            f"Query: {self.sql.strip()}",
            "",
            "Distributed plan "
            f"(DMS cost {self.pdw_plan.cost:.6f}s, "
            f"result {self.pdw_plan.distribution}):",
            self.pdw_plan.tree_string(),
            "",
            "DSQL plan:",
            self.dsql_plan.describe(),
        ]
        return "\n".join(lines)


class PdwEngine:
    """Compiles SQL text into DSQL plans against a shell database."""

    def __init__(self, shell: ShellDatabase,
                 serial_config: Optional[OptimizerConfig] = None,
                 pdw_config: Optional[PdwConfig] = None):
        self.shell = shell
        self.serial_optimizer = SerialOptimizer(shell, serial_config)
        self.pdw_config = pdw_config or PdwConfig()

    def compile(self, sql: str,
                extract_serial: bool = True,
                hints: Optional[dict] = None) -> CompiledQuery:
        """Compile ``sql`` into a DSQL plan.

        ``hints`` maps base-table names to a forced movement strategy
        ('replicate' or 'shuffle') for this query only — the paper's
        §3.1 distributed-execution query hints.
        """
        # Components 1-2: parse, bind, serial optimization on the shell DB.
        serial = self.serial_optimizer.optimize_sql(
            sql, extract_serial=extract_serial)

        # Component 3: export the search space as XML ...
        xml_text = memo_to_xml(serial.memo, serial.root_group, serial.stats)
        # ... and parse it back on the PDW side (component 4's memo parser).
        parsed = memo_from_xml(xml_text, self.shell)

        # Component 4: bottom-up PDW optimization.
        config = self.pdw_config
        if hints:
            config = replace(config, hints={
                name.lower(): strategy
                for name, strategy in hints.items()
            })
        pdw_optimizer = PdwOptimizer(
            parsed.memo, parsed.root_group,
            node_count=self.shell.node_count,
            config=config,
        )
        pdw_plan = pdw_optimizer.optimize()

        # DSQL generation.
        query = serial.query
        dsql_plan = DsqlGenerator().generate(
            pdw_plan.root,
            output_names=query.output_names,
            output_vars=query.output_columns(),
            order_by=query.order_by or None,
            limit=query.limit,
            final_distribution=pdw_plan.distribution,
            total_cost=pdw_plan.cost,
        )
        return CompiledQuery(
            sql=sql,
            serial=serial,
            memo_xml=xml_text,
            pdw_memo=parsed.memo,
            pdw_root_group=parsed.root_group,
            pdw_plan=pdw_plan,
            dsql_plan=dsql_plan,
        )
