"""Plan quality: the PDW optimizer vs parallelizing the best serial plan.

Reproduces the paper's §2.5 argument interactively: for the three-way
Customer ⋈ Orders ⋈ Lineitem join, the best serial order differs from the
best parallel order, and the PDW optimizer — which re-costs the *entire*
serial search space with distribution in mind — finds the cheaper plan.
Then runs the comparison across the whole TPC-H query suite.

    python examples/plan_quality.py
"""

from repro import PdwEngine, parallelize_serial_plan
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER, decimal, varchar
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES


def sec25_shell():
    catalog = Catalog([
        TableDef("customer",
                 [Column("c_custkey", INTEGER), Column("c_name", varchar(25))],
                 hash_distributed("c_custkey"), row_count=1_000_000,
                 primary_key=("c_custkey",)),
        TableDef("orders",
                 [Column("o_orderkey", INTEGER), Column("o_custkey", INTEGER)],
                 hash_distributed("o_orderkey"), row_count=1_500_000,
                 primary_key=("o_orderkey",)),
        TableDef("lineitem",
                 [Column("l_orderkey", INTEGER),
                  Column("l_quantity", decimal())],
                 hash_distributed("l_orderkey"), row_count=3_000_000),
    ])
    shell = ShellDatabase(catalog, node_count=8)
    stats = {
        ("customer", "c_custkey"): (1e6, 1e6, 4),
        ("customer", "c_name"): (1e6, 1e6, 25),
        ("orders", "o_orderkey"): (1.5e6, 1.5e6, 4),
        ("orders", "o_custkey"): (1.5e6, 1e6, 4),
        ("lineitem", "l_orderkey"): (3e6, 1.5e6, 4),
        ("lineitem", "l_quantity"): (3e6, 50, 8),
    }
    for (table, column), (rows, distinct, width) in stats.items():
        shell.set_column_stats(
            table, column,
            ColumnStats(rows, 0.0, distinct, 0, distinct, width))
    return shell


def main():
    # ----- the §2.5 three-way join ----------------------------------------
    shell = sec25_shell()
    engine = PdwEngine(shell)
    sql = ("SELECT c_name, l_quantity FROM customer, orders, lineitem "
           "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")
    compiled = engine.compile(sql)
    baseline = parallelize_serial_plan(compiled.serial, shell)

    print("Section 2.5: Customer(1M) x Orders(1.5M) x Lineitem(3M)\n")
    print("Best SERIAL plan (joins customer x orders first):")
    print(compiled.serial.best_serial_plan.tree_string())
    print(f"\n... parallelized as-is: DMS cost {baseline.cost:.4f}s")
    print("\nPDW optimizer's plan (orders x lineitem first, collocated):")
    print(compiled.pdw_plan.tree_string())
    print(f"\nPDW DMS cost {compiled.pdw_plan.cost:.4f}s "
          f"-> {baseline.cost / compiled.pdw_plan.cost:.2f}x cheaper")

    # ----- across the TPC-H suite ------------------------------------------
    print("\nTPC-H suite (scale 0.003, 8 nodes):")
    _, tpch_shell = build_tpch_appliance(scale=0.003, node_count=8)
    tpch_engine = PdwEngine(tpch_shell)
    print(f"{'query':<8}{'PDW cost':>12}{'baseline':>12}{'speedup':>10}")
    for name, query_sql in TPCH_QUERIES.items():
        tpch_compiled = tpch_engine.compile(query_sql)
        tpch_baseline = parallelize_serial_plan(
            tpch_compiled.serial, tpch_shell)
        cost = tpch_compiled.pdw_plan.cost
        speedup = tpch_baseline.cost / cost if cost > 0 else 1.0
        print(f"{name:<8}{cost:>12.6f}{tpch_baseline.cost:>12.6f}"
              f"{speedup:>9.2f}x")


if __name__ == "__main__":
    main()
