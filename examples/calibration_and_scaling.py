"""Cost calibration and what-if scaling.

First re-derives the λ constants from targeted performance tests
(§3.3.3), then uses the calibrated cost model to answer a capacity
question: how does the chosen plan and its cost change as compute nodes
are added?

    python examples/calibration_and_scaling.py
"""

from repro import Calibrator, PdwConfig, PdwEngine
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER
from repro.pdw.dms import DataMovement


def main():
    # ----- calibration ------------------------------------------------------
    print("calibrating the appliance (targeted DMS performance tests)...")
    result = Calibrator(node_count=8).calibrate(
        sizes=((1000, 1), (4000, 2)))
    constants = result.constants
    print(f"  lambda_reader_direct = {constants.lambda_reader_direct:.3e}")
    print(f"  lambda_reader_hash   = {constants.lambda_reader_hash:.3e}")
    print(f"  lambda_network       = {constants.lambda_network:.3e}")
    print(f"  lambda_writer        = {constants.lambda_writer:.3e}")
    print(f"  lambda_bulk_copy     = {constants.lambda_bulk_copy:.3e}")
    spread = result.implied_lambda_spread()
    print("  per-sample spread (the paper's linearity check):")
    for component, (low, high) in spread.items():
        print(f"    {component:<10} {low:.2e} .. {high:.2e}")

    # ----- what-if scaling ---------------------------------------------------
    print("\nwhat-if: join of big(2M, hashed on key) with mid(150k, "
          "hashed elsewhere) as nodes grow")
    print(f"{'nodes':>6}  {'movement':<28}{'DMS cost (s)':>14}")
    for nodes in (2, 4, 8, 16, 32, 64):
        shell = make_shell(nodes)
        engine = PdwEngine(shell, pdw_config=PdwConfig(constants=constants))
        compiled = engine.compile(
            "SELECT mid_val FROM big, mid WHERE big_ref = mid_key")
        moves = [n.op.describe() for n in compiled.pdw_plan.root.walk()
                 if isinstance(n.op, DataMovement)]
        print(f"{nodes:>6}  {', '.join(moves):<28}"
              f"{compiled.pdw_plan.cost:>14.6f}")
    print("\nshuffles shrink with node count; once broadcasting the mid "
          "table\nbecomes cheaper than shuffling the big one, the plan "
          "flips strategy.")


def make_shell(nodes):
    catalog = Catalog([
        TableDef("big",
                 [Column("big_key", INTEGER), Column("big_ref", INTEGER)],
                 hash_distributed("big_key"), row_count=2_000_000),
        TableDef("mid",
                 [Column("mid_key", INTEGER), Column("mid_val", INTEGER)],
                 hash_distributed("mid_key"), row_count=150_000),
    ])
    shell = ShellDatabase(catalog, nodes)
    shell.set_column_stats("big", "big_key",
                           ColumnStats(2e6, 0, 2e6, 1, 2_000_000, 4))
    shell.set_column_stats("big", "big_ref",
                           ColumnStats(2e6, 0, 150e3, 1, 150_000, 4))
    shell.set_column_stats("mid", "mid_key",
                           ColumnStats(150e3, 0, 150e3, 1, 150_000, 4))
    shell.set_column_stats("mid", "mid_val",
                           ColumnStats(150e3, 0, 1000, 1, 1000, 4))
    return shell


if __name__ == "__main__":
    main()
