"""Quickstart: build an appliance, compile a query, run it.

    python examples/quickstart.py
"""

from repro import DsqlRunner, PdwEngine, build_tpch_appliance, run_reference


def main():
    # A simulated 8-node appliance loaded with a small TPC-H instance.
    # Statistics are computed per node and merged into the shell database
    # exactly as the paper's §2.2 describes.
    print("building appliance (TPC-H scale 0.005, 8 compute nodes)...")
    appliance, shell = build_tpch_appliance(scale=0.005, node_count=8)
    for table in shell.tables():
        print(f"  {table.name:<10} {table.row_count:>8} rows  "
              f"{table.distribution}")

    engine = PdwEngine(shell)

    sql = """
        SELECT n_name, COUNT(*) AS customers, SUM(c_acctbal) AS balance
        FROM customer, nation
        WHERE c_nationkey = n_nationkey
        GROUP BY n_name
        ORDER BY customers DESC, n_name
        LIMIT 5
    """
    print("\ncompiling:", " ".join(sql.split()))
    compiled = engine.compile(sql)
    print()
    print(compiled.explain())

    print("\nexecuting on the appliance...")
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    print(f"{' | '.join(result.columns)}")
    for row in result.rows:
        print(" | ".join(str(v) for v in row))
    print(f"\nsimulated time: {result.elapsed_seconds * 1e3:.3f} ms "
          f"(data movement: {result.dms_seconds * 1e3:.3f} ms)")

    reference = run_reference(appliance, sql)

    def canon(rows):
        # Distributed partial sums accumulate in a different order, so
        # float results can differ in the last bits.
        return [tuple(round(v, 6) if isinstance(v, float) else v
                      for v in row) for row in rows]

    assert canon(result.rows) == canon(reference.rows), \
        "distributed != reference!"
    print("verified against the single-system-image reference.")


if __name__ == "__main__":
    main()
