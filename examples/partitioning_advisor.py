"""Automated partitioning design (the paper's reference [10]).

Starts from a deliberately bad distribution design (every TPC-H table
hashed on a column no join uses), then lets the advisor search for a
better one using the PDW optimizer as its what-if cost oracle — the
architecture of the team's companion SIGMOD 2011 paper.

    python examples/partitioning_advisor.py
"""

from repro import PartitioningAdvisor, WorkloadQuery
from repro.catalog.schema import Catalog, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES

BAD_COLUMNS = {
    "region": "r_name",
    "nation": "n_name",
    "supplier": "s_acctbal",
    "customer": "c_acctbal",
    "orders": "o_totalprice",
    "lineitem": "l_quantity",
    "part": "p_size",
    "partsupp": "ps_availqty",
}


def adversarial_shell(paper_shell):
    tables = [
        TableDef(t.name, list(t.columns),
                 hash_distributed(BAD_COLUMNS[t.name]),
                 row_count=t.row_count, primary_key=t.primary_key)
        for t in paper_shell.tables()
    ]
    shell = ShellDatabase(Catalog(tables), paper_shell.node_count)
    for table in tables:
        for column in table.columns:
            if paper_shell.has_column_stats(table.name, column.name):
                shell.set_column_stats(
                    table.name, column.name,
                    paper_shell.column_stats(table.name, column.name))
    return shell


def main():
    print("building TPC-H shell statistics...")
    _, paper_shell = build_tpch_appliance(scale=0.003, node_count=8)
    shell = adversarial_shell(paper_shell)
    print("starting design (adversarial):")
    for table in shell.tables():
        print(f"  {table.name:<10} {table.distribution}")

    workload = [
        WorkloadQuery(TPCH_QUERIES[name])
        for name in ("Q3", "Q5", "Q12", "Q14", "Q20")
    ]
    print(f"\nadvising over a {len(workload)}-query workload "
          "(each what-if evaluation = one full PDW compilation)...")
    advisor = PartitioningAdvisor(shell, workload, max_rounds=6)
    result = advisor.recommend()

    print()
    print(result.describe())
    print("\nsearch steps:")
    for table, distribution, cost in result.steps:
        print(f"  move {table:<10} -> {str(distribution):<20} "
              f"(workload cost now {cost:.6f}s)")


if __name__ == "__main__":
    main()
