"""The paper's worked examples, end to end.

Walks the three examples the paper develops:

1. Figure 3   — Customer ⋈ Orders with a price filter: the serial MEMO,
                the data-movement alternatives, and the chosen plan.
2. Section 2.4 — the two-step DSQL plan and its per-step execution.
3. Figure 7   — TPC-H Q20: sub-query unnesting, join transitivity
                closure, and the four-step distributed plan.

    python examples/paper_walkthrough.py
"""

from repro import DsqlRunner, PdwEngine, build_tpch_appliance
from repro.pdw.dms import DataMovement
from repro.workloads.tpch_queries import SEC24_JOIN, TPCH_QUERIES


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    appliance, shell = build_tpch_appliance(scale=0.005, node_count=8)
    engine = PdwEngine(shell)

    # ----- Figure 3 -------------------------------------------------------
    banner("Figure 3: Customer x Orders, o_totalprice > 1000")
    sql = ("SELECT c_custkey, o_orderdate FROM customer, orders "
           "WHERE c_custkey = o_custkey AND o_totalprice > 1000")
    compiled = engine.compile(sql)
    print("\nSerial MEMO exported by the 'SQL Server' side "
          f"({len(compiled.serial.memo.canonical_groups())} groups, "
          f"{compiled.serial.memo.expression_count()} expressions):\n")
    print(compiled.serial.memo.dump(compiled.serial.root_group))
    print(f"\nMEMO XML interchange document: "
          f"{len(compiled.memo_xml)} bytes")
    print("\nChosen distributed plan "
          f"(DMS cost {compiled.pdw_plan.cost:.6f}s):")
    print(compiled.pdw_plan.tree_string())

    # ----- Section 2.4 ----------------------------------------------------
    banner("Section 2.4: the DSQL plan, step by step")
    compiled = engine.compile(SEC24_JOIN)
    print()
    print(compiled.dsql_plan.describe())
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    print(f"\nexecuted: {len(result.rows)} result rows, "
          f"{result.elapsed_seconds * 1e3:.3f} ms simulated")
    for stats in result.step_stats:
        label = stats.operation.name if stats.operation else "RETURN"
        print(f"  step {stats.step_index} ({label}): "
              f"{stats.rows_moved} rows moved, "
              f"{stats.total_bytes()} bytes read")

    # ----- Figure 7: Q20 --------------------------------------------------
    banner("Figure 7: TPC-H Q20")
    compiled = engine.compile(TPCH_QUERIES["Q20"])
    print("\nDistributed plan:")
    print(compiled.pdw_plan.tree_string())
    print("\nDSQL steps (compare with the paper's step 0-3):")
    for step in compiled.dsql_plan.steps:
        move = step.movement.describe() if step.movement else "Return"
        print(f"  DSQL step {step.index}: {move}")
    moves = [n.op for n in compiled.pdw_plan.root.walk()
             if isinstance(n.op, DataMovement)]
    print(f"\n{len(moves)} data movements; broadcast of filtered part, "
          "two shuffles (partkey class, suppkey class), then Return —")
    print("matching the paper's Figure 7 structure.")
    result = DsqlRunner(appliance).run(compiled.dsql_plan)
    print(f"\nQ20 executed: {len(result.rows)} suppliers, "
          f"{result.elapsed_seconds * 1e3:.3f} ms simulated")


if __name__ == "__main__":
    main()
