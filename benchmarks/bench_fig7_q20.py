"""E6 (§4, Figure 7) — TPC-H Q20's parallel plan.

The paper's end-to-end walkthrough: sub-query removal, sub-query-to-join
transformation, join transitivity closure, and a 4-step DSQL plan —
broadcast of filtered part (step 0), shuffle on the partkey class with a
distributed aggregation (step 1), shuffle on the suppkey class with a
local/global distinct (step 2), return (step 3).
"""

from conftest import fmt_row, report

from repro.algebra.logical import AggPhase, LogicalGroupBy, LogicalJoin
from repro.appliance.runner import DsqlRunner, run_reference
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import StepKind
from repro.workloads.tpch_queries import TPCH_QUERIES


def test_fig7_q20(benchmark, tpch_bench, bench_engine):
    appliance, _ = tpch_bench
    compiled = benchmark(bench_engine.compile, TPCH_QUERIES["Q20"])
    plan = compiled.dsql_plan

    result = DsqlRunner(appliance).run(plan)
    reference = run_reference(appliance, TPCH_QUERIES["Q20"])

    lines = [
        "TPC-H Q20 parallel plan (Figure 7)",
        "",
        "Plan tree:",
        compiled.pdw_plan.tree_string(),
        "",
        fmt_row("step", "kind", "operation", "hash column",
                widths=[6, 8, 24, 16]),
    ]
    for step in plan.steps:
        lines.append(fmt_row(
            step.index, step.kind.value,
            step.movement.describe() if step.movement else "-",
            step.hash_column or "-", widths=[6, 8, 24, 16]))
    lines += [
        "",
        "Generated step SQL:",
        plan.describe(),
        "",
        f"distributed result rows: {len(result.rows)}, "
        f"reference rows: {len(reference.rows)}, "
        f"match: {sorted(result.rows) == sorted(reference.rows)}",
    ]
    report("E6_fig7_q20", lines)

    # Figure 7 structure.
    assert len(plan.steps) == 4
    operations = [s.movement.operation for s in plan.movement_steps]
    assert operations.count(DmsOperation.BROADCAST_MOVE) == 1
    assert operations.count(DmsOperation.SHUFFLE_MOVE) == 2
    assert plan.steps[-1].kind is StepKind.RETURN

    broadcast_step = next(
        s for s in plan.movement_steps
        if s.movement.operation is DmsOperation.BROADCAST_MOVE)
    assert "part" in broadcast_step.sql.lower()
    assert "GROUP BY" in broadcast_step.sql  # dup-eliminating distinct

    shuffle_columns = [s.hash_column for s in plan.movement_steps
                       if s.movement.operation is DmsOperation.SHUFFLE_MOVE]
    assert any("partkey" in c for c in shuffle_columns)
    assert any("suppkey" in c for c in shuffle_columns)

    # Join below aggregation (the part ⋈ lineitem of step 0/1) and a
    # local/global split (step 2's distinct).
    phases = [n.op.phase for n in compiled.pdw_plan.root.walk()
              if isinstance(n.op, LogicalGroupBy)]
    assert AggPhase.LOCAL in phases and AggPhase.GLOBAL in phases
    agg_with_join_below = any(
        isinstance(node.op, LogicalGroupBy) and any(
            isinstance(d.op, LogicalJoin) for d in node.walk())
        for node in compiled.pdw_plan.root.walk())
    assert agg_with_join_below

    assert sorted(result.rows) == sorted(reference.rows)
