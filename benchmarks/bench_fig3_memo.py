"""E1 (Figure 3) — parallel query optimization flow.

Reproduces the paper's running example: the serial MEMO for
``Customer ⋈ Orders, o_totalprice > 1000`` is augmented with data-movement
alternatives (Shuffle / Replicate, the paper's groups 5 and 6), and the
chosen plan shuffles the filtered Orders onto ``o_custkey`` for a local
join — Figure 3(c)-(e).

The shell database carries the paper's relative sizes (customer 150k,
orders 1.5M, the price filter keeping ~30%): large enough that shuffling
the filtered orders beats broadcasting customer, which is the choice the
Figure 3 narrative describes.
"""

import pytest
from conftest import fmt_row, report

from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats, Histogram
from repro.common.types import DATE, INTEGER, decimal
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.engine import PdwEngine
from repro.pdw.enumerator import PdwOptimizer

SQL = ("SELECT c_custkey, o_orderdate FROM customer, orders "
       "WHERE c_custkey = o_custkey AND o_totalprice > 1000")


@pytest.fixture(scope="module")
def fig3_shell():
    catalog = Catalog([
        TableDef("customer",
                 [Column("c_custkey", INTEGER)],
                 hash_distributed("c_custkey"), row_count=150_000,
                 primary_key=("c_custkey",)),
        TableDef("orders",
                 [Column("o_orderkey", INTEGER),
                  Column("o_custkey", INTEGER),
                  Column("o_totalprice", decimal()),
                  Column("o_orderdate", DATE)],
                 hash_distributed("o_orderkey"), row_count=1_500_000,
                 primary_key=("o_orderkey",)),
    ])
    shell = ShellDatabase(catalog, node_count=8)
    shell.set_column_stats("customer", "c_custkey",
                           ColumnStats(150e3, 0, 150e3, 1, 150_000, 4.0))
    shell.set_column_stats("orders", "o_orderkey",
                           ColumnStats(1.5e6, 0, 1.5e6, 1, 1_500_000, 4.0))
    shell.set_column_stats("orders", "o_custkey",
                           ColumnStats(1.5e6, 0, 150e3, 1, 150_000, 4.0))
    # Price histogram: values 0..3300, so "> 1000" keeps ~70%... use a
    # spread where the filter keeps roughly 30% instead.
    prices = [i % 1400 for i in range(10_000)]
    price_stats = ColumnStats.build(prices)
    price_stats.row_count = 1.5e6
    price_stats.null_count = 0.0
    shell.set_column_stats("orders", "o_totalprice", price_stats)
    shell.set_column_stats("orders", "o_orderdate",
                           ColumnStats(1.5e6, 0, 2400, None, None, 4.0))
    return shell


def test_fig3_augmented_memo(benchmark, fig3_shell):
    engine = PdwEngine(fig3_shell)
    compiled = benchmark(engine.compile, SQL)

    pdw = PdwOptimizer(compiled.pdw_memo, compiled.pdw_root_group,
                       node_count=fig3_shell.node_count)
    pdw.optimize()

    move_alternatives = {}
    for group_id, options in pdw.options.items():
        for option in options:
            if isinstance(option.op, DataMovement):
                move_alternatives.setdefault(group_id, []).append(
                    (option.op.describe(), option.cost))

    lines = [
        "Figure 3 reproduction: Customer x Orders, o_totalprice > 1000",
        "(customer 150k rows hashed(c_custkey); orders 1.5M rows "
        "hashed(o_orderkey); 8 compute nodes)",
        "",
        "Serial (initial) MEMO exported by the 'SQL Server' side:",
        compiled.serial.memo.dump(compiled.serial.root_group),
        "",
        "Data-movement alternatives the PDW optimizer adds "
        "(the paper's move groups 5/6):",
    ]
    for group_id, moves in sorted(move_alternatives.items()):
        rendered = ", ".join(f"{m} (cost {c:.4f}s)" for m, c in moves)
        lines.append(fmt_row(f"  group {group_id}", rendered,
                             widths=[10, 90]))
    lines += [
        "",
        f"Chosen distributed plan (DMS cost {compiled.pdw_plan.cost:.4f}s):",
        compiled.pdw_plan.tree_string(),
        "",
        "DSQL plan (Figure 3(e)):",
        compiled.dsql_plan.describe(),
    ]
    report("E1_fig3_memo", lines)

    all_moves = [m for moves in move_alternatives.values()
                 for m, _ in moves]
    assert any("ShuffleMove" in m for m in all_moves)
    assert any("Broadcast" in m for m in all_moves)
    chosen = [n.op for n in compiled.pdw_plan.root.walk()
              if isinstance(n.op, DataMovement)]
    assert len(chosen) == 1
    assert chosen[0].operation is DmsOperation.SHUFFLE_MOVE
    assert chosen[0].hash_columns[0].name == "o_custkey"
