"""E16 (extension; §3.2) — top-down vs bottom-up enumeration.

*"While our current implementation employs a bottom-up search strategy, a
top-down enumeration technique is equally applicable to the PDW QO
design."*  We implement both and verify the claim: identical optimal plan
costs on every TPC-H query, with different search effort profiles.
"""

from conftest import fmt_row, report

from repro.optimizer.search import SerialOptimizer
from repro.pdw.enumerator import PdwOptimizer
from repro.pdw.topdown import TopDownPdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES


def test_topdown_vs_bottomup(benchmark, tpch_bench):
    _, shell = tpch_bench
    optimizer = SerialOptimizer(shell)

    rows = []
    all_equal = True
    for name, sql in TPCH_QUERIES.items():
        serial = optimizer.optimize_sql(sql, extract_serial=False)
        bottom_up = PdwOptimizer(
            serial.memo, serial.root_group, shell.node_count,
            equivalence=serial.equivalence).optimize()
        top_down = TopDownPdwOptimizer(
            serial.memo, serial.root_group, shell.node_count,
            equivalence=serial.equivalence).optimize()
        equal = abs(bottom_up.cost - top_down.cost) <= \
            1e-12 + 1e-6 * max(bottom_up.cost, top_down.cost)
        all_equal = all_equal and equal
        rows.append(fmt_row(
            name, f"{bottom_up.cost:.8f}", f"{top_down.cost:.8f}",
            bottom_up.options_considered, top_down.options_considered,
            "yes" if equal else "NO",
            widths=[8, 14, 14, 14, 14, 6]))

    serial = optimizer.optimize_sql(TPCH_QUERIES["Q5"],
                                    extract_serial=False)
    benchmark(lambda: TopDownPdwOptimizer(
        serial.memo, serial.root_group, shell.node_count,
        equivalence=serial.equivalence).optimize())

    lines = [
        "Top-down vs bottom-up PDW enumeration (paper 3.2: "
        "'equally applicable')",
        "",
        fmt_row("query", "bottom-up", "top-down", "bu effort",
                "td effort", "same", widths=[8, 14, 14, 14, 14, 6]),
    ] + rows
    report("E16_topdown_vs_bottomup", lines)

    assert all_equal, \
        "both strategies must find equally-cheap optimal plans"
