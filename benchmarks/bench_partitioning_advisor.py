"""E14 (extension; paper reference [10]) — automated partitioning design.

The PDW paper cites the team's companion work on automated partitioning
design, which uses this very optimizer as a what-if cost oracle.  We run
the greedy advisor over the TPC-H workload from an adversarial starting
design (every table hashed on a non-join column) and compare three
designs: adversarial, advisor-recommended, and the paper's hand-picked
design (custkey/orderkey/orderkey/partkey/partkey + replicated dims).
"""

from conftest import fmt_row, report

from repro.catalog.schema import Catalog, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.pdw.advisor import PartitioningAdvisor, WorkloadQuery
from repro.workloads.tpch_queries import TPCH_QUERIES

WORKLOAD_NAMES = ("Q3", "Q5", "Q10", "Q12", "Q14", "Q18", "Q20")

# A deliberately bad start: hash-distribute every table on a column that
# no join uses.
ADVERSARIAL_COLUMNS = {
    "region": "r_name",
    "nation": "n_name",
    "supplier": "s_acctbal",
    "customer": "c_acctbal",
    "orders": "o_totalprice",
    "lineitem": "l_quantity",
    "part": "p_size",
    "partsupp": "ps_availqty",
}


def reshelled(shell, distribution_of):
    tables = []
    for table in shell.tables():
        tables.append(TableDef(
            table.name, list(table.columns),
            distribution_of(table),
            row_count=table.row_count,
            primary_key=table.primary_key))
    clone = ShellDatabase(Catalog(tables), shell.node_count)
    for table in tables:
        for column in table.columns:
            if shell.has_column_stats(table.name, column.name):
                clone.set_column_stats(
                    table.name, column.name,
                    shell.column_stats(table.name, column.name))
    return clone


def test_partitioning_advisor(benchmark, tpch_bench):
    _, paper_shell = tpch_bench
    workload = [WorkloadQuery(TPCH_QUERIES[name])
                for name in WORKLOAD_NAMES]

    adversarial_shell = reshelled(
        paper_shell,
        lambda t: hash_distributed(ADVERSARIAL_COLUMNS[t.name]))

    advisor = PartitioningAdvisor(adversarial_shell, workload,
                                  max_rounds=6)
    result = benchmark.pedantic(advisor.recommend, rounds=1, iterations=1)

    paper_advisor = PartitioningAdvisor(paper_shell, workload)
    paper_cost = paper_advisor.evaluate(
        paper_advisor.current_design()).total_cost

    lines = [
        "Automated partitioning design (extension; paper ref [10])",
        f"workload: {', '.join(WORKLOAD_NAMES)} at equal weight",
        "",
        fmt_row("design", "workload DMS cost (s)", widths=[30, 22]),
        fmt_row("adversarial (non-join cols)",
                f"{result.initial.total_cost:.6f}", widths=[30, 22]),
        fmt_row("advisor recommendation",
                f"{result.final.total_cost:.6f}", widths=[30, 22]),
        fmt_row("paper's hand-picked design",
                f"{paper_cost:.6f}", widths=[30, 22]),
        "",
        f"designs evaluated: {result.designs_evaluated}; "
        f"improvement over adversarial: {result.improvement:.2f}x",
        "",
        "recommended placement:",
    ]
    for table, dist in sorted(result.recommended.items()):
        lines.append(fmt_row(f"  {table}", str(dist), widths=[14, 24]))
    report("E14_partitioning_advisor", lines)

    assert result.final.total_cost <= result.initial.total_cost
    assert result.improvement > 2.0
    # The advisor must land within 2x of the paper's expert design.
    assert result.final.total_cost <= paper_cost * 2.0 + 1e-9
