"""E7 (§3.3) — cost model quality: predicted DMS cost vs simulated time.

The paper justifies a DMS-only cost model by arguing data movement
dominates execution.  We measure, for every TPC-H query in the suite:

* the optimizer's predicted DMS cost,
* the simulated DMS time and total time (including local SQL work),

and report the DMS share of execution plus the rank correlation between
prediction and simulation across queries — the quantity that determines
whether the model ranks plans correctly.
"""

import pytest
import scipy.stats
from conftest import fmt_row, report

from repro.appliance.runner import DsqlRunner
from repro.workloads.tpch_queries import TPCH_QUERIES


def test_cost_model_accuracy(benchmark, tpch_bench, bench_engine):
    appliance, _ = tpch_bench

    names = list(TPCH_QUERIES)
    predicted = []
    simulated_dms = []
    simulated_total = []
    for name in names:
        compiled = bench_engine.compile(TPCH_QUERIES[name])
        result = DsqlRunner(appliance).run(compiled.dsql_plan)
        predicted.append(compiled.pdw_plan.cost)
        simulated_dms.append(result.dms_seconds)
        simulated_total.append(result.elapsed_seconds)

    # A movement-heavy query (unfiltered repartitioning join): the regime
    # where the paper's "DMS dominates" claim lives.
    heavy_sql = ("SELECT c_name, c_address, c_phone, o_orderdate "
                 "FROM customer, orders WHERE c_custkey = o_custkey")
    heavy_compiled = bench_engine.compile(heavy_sql)
    heavy_result = DsqlRunner(appliance).run(heavy_compiled.dsql_plan)
    heavy_share = (heavy_result.dms_seconds
                   / max(heavy_result.dms_seconds
                         + heavy_result.relational_seconds, 1e-12))

    benchmark(lambda: DsqlRunner(appliance).run(
        bench_engine.compile(TPCH_QUERIES["Q3"]).dsql_plan))

    moving = [i for i, p in enumerate(predicted) if p > 0]
    rho, _p = scipy.stats.spearmanr(
        [predicted[i] for i in moving],
        [simulated_dms[i] for i in moving])

    lines = [
        "Cost model accuracy across the TPC-H suite (paper 3.3)",
        "",
        fmt_row("query", "predicted DMS (s)", "simulated DMS (s)",
                "simulated total (s)", "DMS share",
                widths=[8, 18, 18, 20, 10]),
    ]
    for i, name in enumerate(names):
        share = (simulated_dms[i] / simulated_total[i]
                 if simulated_total[i] else 0.0)
        lines.append(fmt_row(
            name, f"{predicted[i]:.6f}", f"{simulated_dms[i]:.6f}",
            f"{simulated_total[i]:.6f}", f"{share * 100:.0f}%",
            widths=[8, 18, 18, 20, 10]))
    lines += [
        "",
        f"Spearman rank correlation (predicted vs simulated DMS, "
        f"moving queries): {rho:.3f}",
        "",
        "TPC-H plans pre-filter and pre-aggregate before moving, so their",
        "movement share is small; a movement-heavy repartitioning join",
        "shows the regime the paper's DMS-only model targets:",
        fmt_row("  movement-heavy join", "",
                f"{heavy_result.dms_seconds:.6f}",
                f"{heavy_result.dms_seconds + heavy_result.relational_seconds:.6f}",
                f"{heavy_share * 100:.0f}%",
                widths=[8, 18, 18, 20, 10]),
    ]
    report("E7_cost_model_accuracy", lines)

    assert rho > 0.6, "predictions must rank plans like the simulator"
    # Movement share scales with movement volume: the repartitioning join
    # is far more DMS-bound than the median (filter-heavy) TPC-H query,
    # and its movement time is predicted within a factor of ~2.
    shares = sorted(
        simulated_dms[i] / simulated_total[i]
        for i in range(len(names)) if simulated_total[i] > 0)
    median_share = shares[len(shares) // 2]
    assert heavy_share > max(0.1, 3 * median_share)
    assert heavy_compiled.pdw_plan.cost == pytest.approx(
        heavy_result.dms_seconds, rel=1.0)
    # Predictions track simulation within an order of magnitude for every
    # non-trivial mover.
    for i in moving:
        if predicted[i] > 1e-5 or simulated_dms[i] > 1e-5:
            assert predicted[i] == pytest.approx(simulated_dms[i],
                                                 rel=9.0)
