"""E11 (§2.2) — global statistics via per-node merge.

*"To compute global statistics, local statistics are first computed on
each node via the standard SQL Server mechanisms, and are then merged
together to derive global statistics."*

We compare three statistics regimes over real distributed TPC-H data:

* exact single-image statistics (the unobtainable ideal),
* merged per-node statistics (the paper's pipeline / this repo's default),
* one node's local statistics scaled by N (the naive alternative),

and report estimation error for distinct counts and selectivities.
"""

import pytest
from conftest import fmt_row, report

from repro.catalog.statistics import ColumnStats, merge_column_stats


COLUMNS = [
    ("orders", "o_orderkey"),
    ("orders", "o_custkey"),
    ("orders", "o_orderpriority"),
    ("lineitem", "l_partkey"),
    ("lineitem", "l_shipmode"),
    ("lineitem", "l_quantity"),
    ("customer", "c_nationkey"),
    ("customer", "c_mktsegment"),
]


def column_values(appliance, table, column):
    table_def = appliance.catalog.table(table)
    index = table_def.column_index(column)
    return [row[index]
            for row in appliance.table_rows_everywhere(table)]


def fragment_stats(appliance, table, column):
    table_def = appliance.catalog.table(table)
    index = table_def.column_index(column)
    return [
        ColumnStats.build([row[index] for row in node.rows(table)])
        for node in appliance.compute
    ]


def test_stats_merge(benchmark, tpch_bench):
    appliance, _ = tpch_bench

    rows = []
    merged_errors = []
    naive_errors = []
    for table, column in COLUMNS:
        values = column_values(appliance, table, column)
        exact = ColumnStats.build(values)
        fragments = fragment_stats(appliance, table, column)
        merged = merge_column_stats(fragments)
        naive_distinct = fragments[0].distinct_count * len(fragments)

        merged_error = abs(merged.distinct_count - exact.distinct_count) \
            / max(1.0, exact.distinct_count)
        naive_error = abs(naive_distinct - exact.distinct_count) \
            / max(1.0, exact.distinct_count)
        merged_errors.append(merged_error)
        naive_errors.append(naive_error)
        rows.append(fmt_row(
            f"{table}.{column}",
            f"{exact.distinct_count:.0f}",
            f"{merged.distinct_count:.0f}",
            f"{naive_distinct:.0f}",
            f"{merged_error * 100:.0f}%",
            f"{naive_error * 100:.0f}%",
            widths=[26, 10, 10, 12, 10, 10]))

    benchmark(lambda: merge_column_stats(
        fragment_stats(appliance, "lineitem", "l_partkey")))

    lines = [
        "Global statistics: merged per-node stats vs exact (paper 2.2)",
        "",
        fmt_row("column", "exact", "merged", "naive(xN)",
                "merged err", "naive err", widths=[26, 10, 10, 12, 10, 10]),
    ] + rows + [
        "",
        f"mean distinct-count error: merged "
        f"{sum(merged_errors) / len(merged_errors) * 100:.1f}%, "
        f"naive {sum(naive_errors) / len(naive_errors) * 100:.1f}%",
    ]
    report("E11_stats_merge", lines)

    assert sum(merged_errors) <= sum(naive_errors)
    assert sum(merged_errors) / len(merged_errors) < 0.25

    # Selectivity sanity through the merged histogram.
    values = column_values(appliance, "orders", "o_custkey")
    exact = ColumnStats.build(values)
    merged = merge_column_stats(
        fragment_stats(appliance, "orders", "o_custkey"))
    midpoint = sorted(values)[len(values) // 2]
    exact_rows = exact.histogram.estimate_le(midpoint)
    merged_rows = merged.histogram.estimate_le(midpoint)
    assert merged_rows == pytest.approx(exact_rows, rel=0.2)
