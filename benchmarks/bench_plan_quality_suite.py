"""E8 (§2.5, §5) — plan quality across the workload.

*"The cost model of PDW QO ... on a rich space of alternatives produces
much higher-quality plans than simply parallelizing the best serial
plan."*  For every TPC-H query in the suite we compare the PDW optimizer's
plan cost against the parallelized-best-serial baseline, plus the §2.5
three-way join where the gap is structural.  An ablation column shows the
extended cost model (relational work added) for the design choice called
out in DESIGN.md.
"""

from conftest import fmt_row, report

from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.engine import PdwEngine
from repro.pdw.enumerator import PdwConfig, PdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES

from bench_sec25_serial_vs_parallel import sec25_shell  # noqa: F401  (fixture)

SEC25_SQL = ("SELECT c_name, l_quantity FROM customer, orders, lineitem "
             "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")


def test_plan_quality_suite(benchmark, tpch_bench, bench_engine,
                            sec25_shell):  # noqa: F811
    _, shell = tpch_bench

    rows = []
    speedups = []
    for name, sql in TPCH_QUERIES.items():
        compiled = bench_engine.compile(sql)
        baseline = parallelize_serial_plan(compiled.serial, shell)
        extended = PdwOptimizer(
            compiled.pdw_memo, compiled.pdw_root_group,
            node_count=shell.node_count,
            config=PdwConfig(relational_cost_weight=1e-9)).optimize()
        pdw_cost = compiled.pdw_plan.cost
        speedup = baseline.cost / pdw_cost if pdw_cost > 0 else 1.0
        speedups.append(speedup)
        rows.append(fmt_row(
            name, f"{pdw_cost:.6f}", f"{baseline.cost:.6f}",
            f"{speedup:.2f}x", f"{extended.cost:.6f}",
            widths=[10, 14, 16, 10, 14]))

    # The structural-gap case from §2.5.
    sec25 = PdwEngine(sec25_shell).compile(SEC25_SQL)
    sec25_baseline = parallelize_serial_plan(sec25.serial, sec25_shell)
    sec25_speedup = sec25_baseline.cost / sec25.pdw_plan.cost

    benchmark(bench_engine.compile, TPCH_QUERIES["Q5"])

    lines = [
        "Plan quality: PDW optimizer vs parallelized best serial plan",
        "",
        fmt_row("query", "PDW cost (s)", "baseline cost", "speedup",
                "extended-model", widths=[10, 14, 16, 10, 14]),
    ] + rows + [
        fmt_row("sec2.5", f"{sec25.pdw_plan.cost:.6f}",
                f"{sec25_baseline.cost:.6f}", f"{sec25_speedup:.2f}x",
                "-", widths=[10, 14, 16, 10, 14]),
        "",
        f"queries where PDW strictly beats the baseline: "
        f"{sum(1 for s in speedups if s > 1.001)}/{len(speedups)} "
        f"(+ the sec2.5 case at {sec25_speedup:.2f}x)",
        "max speedup on the TPC-H suite: "
        f"{max(speedups):.2f}x",
    ]
    report("E8_plan_quality_suite", lines)

    # The PDW space is a superset: never worse, sometimes strictly better.
    assert all(s >= 0.999 for s in speedups)
    assert sec25_speedup > 1.0
    assert max(speedups + [sec25_speedup]) > 1.05
