"""E17 — serving-layer throughput: concurrent clients over one appliance.

Drives the :mod:`repro.service` stack — parameterized plan cache,
admission control, per-execution temp namespacing — with N concurrent
client threads issuing a seeded TPC-H mix (fresh literals per arrival),
and reports queries/sec plus p50/p95/p99 latency per client count,
broken into queue/compile/execute phases (the ``ExecutionTiming`` on
every ``QueryResult``).  A final pair of rows runs the same load with
the plan cache on vs. off, isolating what compile-once buys under
concurrency.

Run directly (``PYTHONPATH=src python benchmarks/bench_service_throughput.py``)
or via pytest; either way the table is archived under
``benchmarks/results/E17_service_throughput.txt`` and the client sweep
— including the phase breakdown — as machine-readable JSON under
``benchmarks/results/E17_service_throughput.json`` so the perf
trajectory captures where time goes, not just end-to-end percentiles.
"""

from __future__ import annotations

import json
import sys

from conftest import BENCH_NODES, BENCH_SCALE, RESULTS_DIR, fmt_row, report

from repro.obs.requests import NULL_REQUESTS
from repro.service import ExecutionOptions, PdwService, run_traffic

CLIENT_SWEEP = (1, 2, 4, 8)
QUERIES_PER_CLIENT = 8
SEED = 2012

WIDTHS = [10, 8, 10, 10, 10, 10, 16]
PHASE_WIDTHS = [10, 14, 14, 14]


def _drive(clients: int, *, use_cache: bool = True,
           queries_per_client: int = QUERIES_PER_CLIENT,
           requests=None):
    service = PdwService(
        scale=BENCH_SCALE, node_count=BENCH_NODES,
        options=ExecutionOptions(use_plan_cache=use_cache),
        max_in_flight=max(4, clients), max_queue=256,
        requests=requests)
    try:
        traffic = run_traffic(service, clients=clients,
                              queries_per_client=queries_per_client,
                              seed=SEED)
    finally:
        service.close()
    return traffic


def _row(label: str, traffic) -> str:
    cache = traffic.cache_stats
    return fmt_row(
        label,
        traffic.completed,
        f"{traffic.queries_per_second:.1f}",
        f"{traffic.p50 * 1e3:.1f}",
        f"{traffic.p95 * 1e3:.1f}",
        f"{traffic.p99 * 1e3:.1f}",
        f"{cache['hits']}/{cache['misses']}",
        widths=WIDTHS)


def _phase_row(label: str, traffic) -> str:
    cells = [label]
    for phase in ("queue", "compile", "execute"):
        cells.append(
            f"{traffic.phase_percentile(phase, 0.50) * 1e3:.2f}/"
            f"{traffic.phase_percentile(phase, 0.95) * 1e3:.2f}")
    return fmt_row(*cells, widths=PHASE_WIDTHS)


def _sweep_record(clients: int, traffic) -> dict:
    record = {
        "clients": clients,
        "completed": traffic.completed,
        "qps": traffic.queries_per_second,
        "p50_ms": traffic.p50 * 1e3,
        "p95_ms": traffic.p95 * 1e3,
        "p99_ms": traffic.p99 * 1e3,
    }
    for phase in ("queue", "compile", "execute"):
        record[f"{phase}_p50_ms"] = \
            traffic.phase_percentile(phase, 0.50) * 1e3
        record[f"{phase}_p95_ms"] = \
            traffic.phase_percentile(phase, 0.95) * 1e3
    return record


def test_service_throughput():
    lines = [
        "Serving-layer throughput: seeded TPC-H mix, fresh literals "
        "per arrival",
        f"(scale {BENCH_SCALE}, {BENCH_NODES} nodes, "
        f"{QUERIES_PER_CLIENT} queries/client, seed {SEED}; "
        "latency in ms)",
        "",
        fmt_row("clients", "done", "qps", "p50", "p95", "p99",
                "cache hit/miss", widths=WIDTHS),
    ]
    peak = None
    sweep_records = []
    phase_lines = [
        "",
        "phase breakdown (p50/p95 ms per phase):",
        fmt_row("clients", "queue", "compile", "execute",
                widths=PHASE_WIDTHS),
    ]
    for clients in CLIENT_SWEEP:
        traffic = _drive(clients)
        assert traffic.errors == 0
        assert traffic.completed == clients * QUERIES_PER_CLIENT
        assert traffic.p99 > 0
        # Distinct shapes in the mix are few; a warm mix must mostly hit.
        assert traffic.cache_stats["hits"] > 0
        # Every completed query carries an ExecutionTiming, so each
        # phase series must be exactly as long as the latency series.
        for phase in ("queue", "compile", "execute"):
            assert len(traffic.phase_latencies.get(phase, ())) == \
                traffic.completed
        lines.append(_row(str(clients), traffic))
        phase_lines.append(_phase_row(str(clients), traffic))
        sweep_records.append(_sweep_record(clients, traffic))
        peak = traffic
    lines += phase_lines
    lines += [
        "",
        "plan cache ablation (same load, 4 clients):",
        fmt_row("cache", "done", "qps", "p50", "p95", "p99",
                "cache hit/miss", widths=WIDTHS),
    ]
    cached = _drive(4)
    uncached = _drive(4, use_cache=False)
    lines.append(_row("on", cached))
    lines.append(_row("off", uncached))

    # Request-lifecycle tracking ablation: the same load with the live
    # RequestRegistry (every query walked through queued -> running ->
    # complete with per-step, per-node progress) vs. NULL_REQUESTS (the
    # zero-overhead disabled path).  Guards the "observability is free
    # when off, cheap when on" contract.
    lines += [
        "",
        "request tracking ablation (same load, 4 clients):",
        fmt_row("tracking", "done", "qps", "p50", "p95", "p99",
                "cache hit/miss", widths=WIDTHS),
    ]
    tracked = _drive(4)
    untracked = _drive(4, requests=NULL_REQUESTS)
    lines.append(_row("on", tracked))
    lines.append(_row("off", untracked))

    report("E17_service_throughput", lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "benchmark": "E17_service_throughput",
        "scale": BENCH_SCALE,
        "nodes": BENCH_NODES,
        "queries_per_client": QUERIES_PER_CLIENT,
        "seed": SEED,
        "sweep": sweep_records,
    }
    out = RESULTS_DIR / "E17_service_throughput.json"
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert peak is not None and peak.completed > 0
    assert cached.cache_stats["hits"] > 0
    assert uncached.cache_stats["hits"] == 0, \
        "use_plan_cache=False must bypass the plan cache entirely"
    assert tracked.completed == untracked.completed == \
        4 * QUERIES_PER_CLIENT
    # Generous, non-flaky bound: per-request bookkeeping is dict writes
    # under one lock — it must never cost an order of magnitude.
    assert tracked.queries_per_second > 0.1 * untracked.queries_per_second


if __name__ == "__main__":
    test_service_throughput()
    sys.exit(0)
