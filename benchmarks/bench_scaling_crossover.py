"""E13 — scaling and the broadcast/shuffle crossover.

Under uniformity, a distributed stream carries ``Y·w/N`` bytes per node
while a replicated one carries ``Y·w`` (§3.3.3), so:

* shuffles get cheaper as nodes are added; broadcasts do not,
* for a join between a small table S and a large table L, broadcasting S
  wins while |S| is small and loses past a crossover that shifts with N.

We sweep |S| and N, record the optimizer's choice and cost, and locate
the crossover.
"""

from conftest import fmt_row, report

from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.engine import PdwEngine

BIG_ROWS = 1_000_000
SMALL_SIZES = (1_000, 10_000, 50_000, 100_000, 300_000, 1_000_000)
NODE_COUNTS = (2, 8, 32)

SQL = ("SELECT small_val FROM big, small "
       "WHERE big_ref = small_key")


def make_shell(small_rows, nodes):
    catalog = Catalog([
        TableDef("big",
                 [Column("big_key", INTEGER), Column("big_ref", INTEGER)],
                 hash_distributed("big_key"), row_count=BIG_ROWS),
        TableDef("small",
                 [Column("small_key", INTEGER),
                  Column("small_val", INTEGER)],
                 hash_distributed("small_key"), row_count=small_rows),
    ])
    shell = ShellDatabase(catalog, nodes)

    def put(table, column, rows, distinct):
        shell.set_column_stats(
            table, column, ColumnStats(rows, 0, distinct, 1, distinct, 4))

    put("big", "big_key", BIG_ROWS, BIG_ROWS)
    put("big", "big_ref", BIG_ROWS, small_rows)
    put("small", "small_key", small_rows, small_rows)
    put("small", "small_val", small_rows, 1000)
    return shell


def chosen_strategy(compiled):
    moves = [n.op for n in compiled.pdw_plan.root.walk()
             if isinstance(n.op, DataMovement)]
    operations = sorted(m.operation.name for m in moves)
    if operations == ["BROADCAST_MOVE"]:
        return "broadcast small"
    if all(op == "SHUFFLE_MOVE" for op in operations):
        return f"shuffle x{len(operations)}"
    return "+".join(operations)


def test_scaling_crossover(benchmark):
    table_rows = []
    crossovers = {}
    for nodes in NODE_COUNTS:
        previous = None
        for small in SMALL_SIZES:
            shell = make_shell(small, nodes)
            compiled = PdwEngine(shell).compile(SQL)
            strategy = chosen_strategy(compiled)
            table_rows.append(fmt_row(
                nodes, small, strategy, f"{compiled.pdw_plan.cost:.6f}",
                widths=[6, 10, 18, 12]))
            if (previous == "broadcast small"
                    and strategy != "broadcast small"
                    and nodes not in crossovers):
                crossovers[nodes] = small
            previous = strategy

    benchmark(lambda: PdwEngine(make_shell(10_000, 8)).compile(SQL))

    lines = [
        "Broadcast vs shuffle crossover "
        f"(big table fixed at {BIG_ROWS} rows)",
        "",
        fmt_row("nodes", "small rows", "chosen strategy", "cost (s)",
                widths=[6, 10, 18, 12]),
    ] + table_rows + [
        "",
        "crossover (first small-table size where broadcast loses):",
    ]
    for nodes in NODE_COUNTS:
        lines.append(fmt_row(f"  N={nodes}",
                             crossovers.get(nodes, "> max size"),
                             widths=[8, 14]))
    report("E13_scaling_crossover", lines)

    # Shape: broadcast wins for tiny tables at low N, and the crossover
    # moves to *smaller* sizes as N grows (broadcast scales with N·Y·w
    # on the wire while shuffles shrink per node).
    first_small = [r for r in table_rows if "broadcast" in r]
    assert first_small, "broadcast must win somewhere"
    observed = [crossovers[n] for n in NODE_COUNTS if n in crossovers]
    assert observed == sorted(observed, reverse=True) or len(observed) < 2
    # Shuffle costs drop with N for the same configuration.
    cost_small_n = PdwEngine(make_shell(1_000_000, 2)).compile(SQL)
    cost_big_n = PdwEngine(make_shell(1_000_000, 32)).compile(SQL)
    assert cost_big_n.pdw_plan.cost < cost_small_n.pdw_plan.cost
