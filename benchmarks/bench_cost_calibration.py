"""E5 (§3.3.3) — cost calibration: fitting λ per component.

Reproduces the paper's calibration process: targeted performance tests
per DMS operation, per-component instrumentation, a least-squares λ fit —
including the reader's two constants (λ_hash / λ_direct) and the
"λ varies with rows/columns but not significantly" observation.
"""

import pytest
from conftest import fmt_row, report

from repro.appliance.calibration import Calibrator
from repro.appliance.dms_runtime import GroundTruthConstants


def test_cost_calibration(benchmark):
    calibrator = Calibrator(node_count=8)
    result = benchmark(calibrator.calibrate,
                       sizes=((500, 1), (2000, 1), (2000, 4)))
    truth = GroundTruthConstants()
    fitted = result.constants

    pairs = [
        ("lambda_reader_direct", fitted.lambda_reader_direct,
         truth.reader_direct),
        ("lambda_reader_hash", fitted.lambda_reader_hash,
         truth.reader_hash),
        ("lambda_network", fitted.lambda_network, truth.network),
        ("lambda_writer", fitted.lambda_writer, truth.writer),
        ("lambda_bulk_copy", fitted.lambda_bulk_copy, truth.bulk_copy),
    ]
    lines = [
        "Cost calibration (paper 3.3.3): fitted lambda per component",
        "",
        fmt_row("component", "fitted (s/byte)", "ground truth",
                "error", widths=[24, 16, 16, 10]),
    ]
    for name, value, target in pairs:
        error = abs(value - target) / target
        lines.append(fmt_row(name, f"{value:.3e}", f"{target:.3e}",
                             f"{error * 100:.1f}%",
                             widths=[24, 16, 16, 10]))
    lines += [
        "",
        "Implied-lambda spread across sizes/column counts (the paper's",
        "linearity check: variation exists but stays within one constant):",
    ]
    for component, (low, high) in result.implied_lambda_spread().items():
        ratio = high / low if low > 0 else float("inf")
        lines.append(fmt_row(f"  {component}", f"{low:.2e}",
                             f"{high:.2e}", f"x{ratio:.2f}",
                             widths=[16, 12, 12, 8]))
    report("E5_cost_calibration", lines)

    # Reader/writer/bulk are fit exactly; hashing surcharge detected.
    assert fitted.lambda_reader_direct == pytest.approx(
        truth.reader_direct, rel=0.05)
    assert fitted.lambda_reader_hash == pytest.approx(
        truth.reader_hash, rel=0.05)
    assert fitted.lambda_reader_hash > fitted.lambda_reader_direct
    assert fitted.lambda_writer == pytest.approx(truth.writer, rel=0.05)
    assert fitted.lambda_bulk_copy == pytest.approx(truth.bulk_copy,
                                                    rel=0.05)
    # Network absorbs the local-delivery discount — below truth but close.
    assert 0.5 * truth.network <= fitted.lambda_network <= truth.network
