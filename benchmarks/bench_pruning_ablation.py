"""E9 (Figure 4 step 06.ii) — interesting-property pruning ablation.

The PDW enumerator keeps at most (#interesting properties + 1) options
per group.  We compare enumeration effort with and without the pruning
and verify optimality is preserved — pruning by interesting properties is
lossless for the final plan while shrinking the option space.
"""

from conftest import fmt_row, report

from repro.optimizer.search import SerialOptimizer
from repro.pdw.enumerator import PdwConfig, PdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES


def run_both(shell, serial):
    pruned_optimizer = PdwOptimizer(
        serial.memo, serial.root_group, node_count=shell.node_count,
        equivalence=serial.equivalence,
        config=PdwConfig(prune_per_property=True))
    pruned = pruned_optimizer.optimize()
    full_optimizer = PdwOptimizer(
        serial.memo, serial.root_group, node_count=shell.node_count,
        equivalence=serial.equivalence,
        config=PdwConfig(prune_per_property=False))
    full = full_optimizer.optimize()
    return pruned, full


def test_pruning_ablation(benchmark, tpch_bench):
    _, shell = tpch_bench
    optimizer = SerialOptimizer(shell)

    rows = []
    all_equal = True
    totals = [0, 0]
    for name, sql in TPCH_QUERIES.items():
        serial = optimizer.optimize_sql(sql, extract_serial=False)
        pruned, full = run_both(shell, serial)
        equal = abs(pruned.cost - full.cost) <= 1e-12 + 1e-6 * full.cost
        all_equal = all_equal and equal
        totals[0] += pruned.options_retained
        totals[1] += full.options_retained
        rows.append(fmt_row(
            name, pruned.options_retained, full.options_retained,
            f"{pruned.cost:.6f}", f"{full.cost:.6f}",
            "yes" if equal else "NO",
            widths=[8, 16, 16, 14, 14, 6]))

    serial = optimizer.optimize_sql(TPCH_QUERIES["Q5"],
                                    extract_serial=False)
    benchmark(run_both, shell, serial)

    lines = [
        "Interesting-property pruning ablation (Figure 4, step 06.ii)",
        "",
        fmt_row("query", "options (pruned)", "options (full)",
                "cost (pruned)", "cost (full)", "same",
                widths=[8, 16, 16, 14, 14, 6]),
    ] + rows + [
        "",
        f"total options retained: pruned {totals[0]} vs full {totals[1]} "
        f"({totals[0] / max(1, totals[1]) * 100:.0f}%)",
    ]
    report("E9_pruning_ablation", lines)

    assert all_equal, "pruning must preserve the optimal plan"
    assert totals[0] <= totals[1]
