"""E10 (§3.1) — MEMO seeding under exploration timeout.

*"For very large search spaces, the SQL Server optimizer uses a timeout
mechanism ... In those cases the initial execution alternatives placed in
the MEMO have a big influence on the space considered.  For PDW
optimization, we 'seed' the MEMO with execution plans that consider
distribution information of tables, for collocated operations."*

Scenario: a small driver table G joins a collocated key table F1 (tiny,
selective intermediate) and a non-collocated low-selectivity table F2
(many-to-many, exploding intermediate).  Under the exploration timeout
(greedy fallback) the cardinality-only order starts with the *smaller*
F2 and pays for moving the large F1 afterwards; the collocation-aware
seed joins F1 first for free and only re-shuffles the tiny intermediate.
"""

from conftest import fmt_row, report

from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER
from repro.optimizer.search import OptimizerConfig, SerialOptimizer
from repro.pdw.enumerator import PdwOptimizer

NODES = 8


def make_shell():
    catalog = Catalog([
        TableDef("g",
                 [Column("g_key", INTEGER), Column("g_tag", INTEGER)],
                 hash_distributed("g_key"), row_count=20_000),
        TableDef("f1",
                 [Column("a_key", INTEGER), Column("a_val", INTEGER)],
                 hash_distributed("a_key"), row_count=850_000,
                 primary_key=("a_key",)),
        TableDef("f2",
                 [Column("b_tag", INTEGER), Column("b_val", INTEGER)],
                 hash_distributed("b_tag"), row_count=800_000),
    ])
    shell = ShellDatabase(catalog, node_count=NODES)

    def put(table, column, rows, distinct):
        shell.set_column_stats(
            table, column, ColumnStats(rows, 0, distinct, 1, distinct, 4))

    put("g", "g_key", 20e3, 20e3)
    put("g", "g_tag", 20e3, 50)       # low-cardinality tag
    put("f1", "a_key", 850e3, 850e3)  # unique key, collocated with g_key
    put("f1", "a_val", 850e3, 1000)
    put("f2", "b_tag", 800e3, 50)     # many-to-many tag join
    put("f2", "b_val", 800e3, 1000)
    return shell


# The FROM order matters: the normalized input tree (g ⋈ f2 first) is
# always seeded into the MEMO, so the timeout fallback starts from the
# *bad* order unless the collocation seed adds the good one.
SQL = ("SELECT a_val, b_val FROM g, f2, f1 "
       "WHERE g_key = a_key AND g_tag = b_tag")


def optimize(shell, seed):
    config = OptimizerConfig(exhaustive_join_limit=2,
                             seed_collocated_joins=seed)
    serial = SerialOptimizer(shell, config).optimize_sql(
        SQL, extract_serial=False)
    plan = PdwOptimizer(serial.memo, serial.root_group,
                        node_count=NODES,
                        equivalence=serial.equivalence).optimize()
    return plan


def test_memo_seeding(benchmark):
    shell = make_shell()
    seeded = optimize(shell, seed=True)
    unseeded = optimize(shell, seed=False)

    benchmark(optimize, shell, True)

    improvement = (unseeded.cost / seeded.cost
                   if seeded.cost > 0 else float("inf"))
    lines = [
        "MEMO seeding under timeout (paper 3.1): greedy fallback "
        "(exhaustive limit 2, i.e. no exhaustive 3-way exploration)",
        "",
        fmt_row("configuration", "plan cost (s)", widths=[34, 16]),
        fmt_row("greedy, cardinality only", f"{unseeded.cost:.6f}",
                widths=[34, 16]),
        fmt_row("greedy + collocation seed", f"{seeded.cost:.6f}",
                widths=[34, 16]),
        "",
        f"seeding improvement: {improvement:.2f}x",
        "",
        "Seeded plan:",
        seeded.root.tree_string(),
        "",
        "Unseeded plan:",
        unseeded.root.tree_string(),
    ]
    report("E10_memo_seeding", lines)

    assert seeded.cost <= unseeded.cost * (1 + 1e-9)
    assert improvement > 1.5, "collocation seeding must pay off here"
