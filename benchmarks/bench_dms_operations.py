"""E4 (§3.3.2) — the seven DMS operations: predicted cost vs simulated
execution across data sizes.

For each operation the table shows the cost model's prediction and the
runtime's simulated elapsed time side by side; the shape to check is that
predictions track the simulator within a small constant factor and that
the relative order of operations matches.
"""

import pytest
from conftest import fmt_row, report

from repro.appliance.calibration import Calibrator
from repro.pdw.cost_model import DmsCostModel
from repro.pdw.dms import DataMovement, DmsOperation

NODES = 8
SIZES = (1_000, 8_000)

OPERATIONS = (
    DmsOperation.SHUFFLE_MOVE,
    DmsOperation.PARTITION_MOVE,
    DmsOperation.CONTROL_NODE_MOVE,
    DmsOperation.BROADCAST_MOVE,
    DmsOperation.TRIM_MOVE,
    DmsOperation.REPLICATED_BROADCAST,
    DmsOperation.REMOTE_COPY,
)


def test_dms_operations(benchmark):
    calibrator = Calibrator(node_count=NODES)
    model = DmsCostModel(NODES)

    rows_of_table = []
    predictions = {}
    simulated = {}
    for operation in OPERATIONS:
        for size in SIZES:
            sample = calibrator.run_one(operation, size, 1)
            source_kind, target = calibrator._movement_for(operation)
            movement = DataMovement(
                operation,
                sample_source(source_kind), target,
                hash_columns=())
            predicted = model.cost(movement, float(size),
                                   float(sample.width))
            measured = max(max(sample.measured_times[0],
                               sample.measured_times[1]),
                           max(sample.measured_times[2],
                               sample.measured_times[3]))
            predictions[(operation, size)] = predicted
            simulated[(operation, size)] = measured
            rows_of_table.append(fmt_row(
                operation.name, size,
                f"{predicted * 1e3:.4f} ms",
                f"{measured * 1e3:.4f} ms",
                f"{predicted / max(measured, 1e-12):.2f}",
                widths=[22, 8, 14, 14, 8]))

    benchmark(calibrator.run_one, DmsOperation.SHUFFLE_MOVE, 4_000, 1)

    lines = [
        "The seven DMS operations (paper 3.3.2): model vs simulator",
        f"({NODES} compute nodes; width ~20 bytes/row)",
        "",
        fmt_row("operation", "rows", "predicted", "simulated",
                "ratio", widths=[22, 8, 14, 14, 8]),
    ] + rows_of_table
    report("E4_dms_operations", lines)

    # Shape checks: predictions within 3x of simulation, monotone in rows.
    for key, predicted in predictions.items():
        measured = simulated[key]
        assert predicted == pytest.approx(measured, rel=2.0)
    for operation in OPERATIONS:
        assert simulated[(operation, SIZES[1])] > \
            simulated[(operation, SIZES[0])]
    # Broadcast moves more bytes than shuffle at the same size.
    assert simulated[(DmsOperation.BROADCAST_MOVE, SIZES[1])] > \
        simulated[(DmsOperation.SHUFFLE_MOVE, SIZES[1])]


def sample_source(kind):
    from repro.algebra.properties import (
        DistKind,
        Distribution,
        ON_CONTROL_DIST,
        REPLICATED_DIST,
        hashed_on,
    )
    if kind is DistKind.HASHED:
        return hashed_on(1)
    if kind is DistKind.REPLICATED:
        return REPLICATED_DIST
    if kind is DistKind.ON_CONTROL:
        return ON_CONTROL_DIST
    return Distribution(DistKind.SINGLE_NODE)
