"""E12 (Figure 4 step 06.ii) — search-space sizes and the option bound.

For every TPC-H query: serial MEMO size (groups / logical / physical
expressions), PDW options considered and retained, and verification of
the paper's per-group bound: #options ≤ #interesting properties + 1.
"""

from conftest import fmt_row, report

from repro.optimizer.search import SerialOptimizer
from repro.pdw.enumerator import PdwOptimizer
from repro.workloads.tpch_queries import TPCH_QUERIES


def test_memo_sizes(benchmark, tpch_bench):
    _, shell = tpch_bench
    optimizer = SerialOptimizer(shell)

    rows = []
    bound_ok = True
    for name, sql in TPCH_QUERIES.items():
        serial = optimizer.optimize_sql(sql, extract_serial=False)
        pdw = PdwOptimizer(serial.memo, serial.root_group,
                           node_count=shell.node_count,
                           equivalence=serial.equivalence)
        plan = pdw.optimize()
        groups = len(serial.memo.canonical_groups())
        logical = serial.memo.expression_count(logical_only=True)
        physical = serial.memo.expression_count() - logical
        for group_id, options in pdw.options.items():
            bound = len(pdw.interesting.get(group_id, ())) + 1
            if len(options) > bound:
                bound_ok = False
        rows.append(fmt_row(
            name, groups, logical, physical,
            plan.options_considered, plan.options_retained,
            widths=[8, 8, 10, 10, 12, 10]))

    benchmark(optimizer.optimize_sql, TPCH_QUERIES["Q5"], False)

    lines = [
        "Search-space sizes across the TPC-H suite",
        "",
        fmt_row("query", "groups", "logical", "physical",
                "considered", "retained", widths=[8, 8, 10, 10, 12, 10]),
    ] + rows + [
        "",
        "per-group bound (options <= interesting properties + 1): "
        + ("holds for every group of every query" if bound_ok
           else "VIOLATED"),
    ]
    report("E12_memo_sizes", lines)

    assert bound_ok
