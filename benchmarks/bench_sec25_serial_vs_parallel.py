"""E3 (§2.5) — why parallelizing the best serial plan is not enough.

The paper's three-table example: with Customer, Orders, Lineitem
partitioned on custkey / orderkey / orderkey, the best *serial* join
order is Customer ⋈ Orders first (smaller intermediate), but the best
*parallel* plan joins the collocated Orders ⋈ Lineitem first and shuffles
the result on custkey.  We regenerate the comparison and report the cost
ratio.
"""

import pytest
from conftest import fmt_row, report

from repro.algebra import physical as phys
from repro.catalog.schema import Catalog, Column, TableDef, hash_distributed
from repro.catalog.shell_db import ShellDatabase
from repro.catalog.statistics import ColumnStats
from repro.common.types import INTEGER, decimal, varchar
from repro.pdw.baseline import parallelize_serial_plan
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.engine import PdwEngine

SQL = ("SELECT c_name, l_quantity FROM customer, orders, lineitem "
       "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey")


@pytest.fixture(scope="module")
def sec25_shell():
    catalog = Catalog([
        TableDef("customer",
                 [Column("c_custkey", INTEGER), Column("c_name", varchar(25))],
                 hash_distributed("c_custkey"), row_count=1_000_000,
                 primary_key=("c_custkey",)),
        TableDef("orders",
                 [Column("o_orderkey", INTEGER), Column("o_custkey", INTEGER)],
                 hash_distributed("o_orderkey"), row_count=1_500_000,
                 primary_key=("o_orderkey",)),
        TableDef("lineitem",
                 [Column("l_orderkey", INTEGER),
                  Column("l_quantity", decimal())],
                 hash_distributed("l_orderkey"), row_count=3_000_000),
    ])
    shell = ShellDatabase(catalog, node_count=8)

    def put(table, column, rows, distinct, width):
        shell.set_column_stats(
            table, column,
            ColumnStats(rows, 0.0, distinct, 0, distinct, width))

    put("customer", "c_custkey", 1e6, 1e6, 4)
    put("customer", "c_name", 1e6, 1e6, 25)
    put("orders", "o_orderkey", 1.5e6, 1.5e6, 4)
    put("orders", "o_custkey", 1.5e6, 1e6, 4)
    put("lineitem", "l_orderkey", 3e6, 1.5e6, 4)
    put("lineitem", "l_quantity", 3e6, 50, 8)
    return shell


def _first_join_tables(plan):
    joins = [n for n in plan.walk()
             if isinstance(n.op, (phys.HashJoin, phys.MergeJoin,
                                  phys.NestedLoopJoin))]
    deepest = joins[-1]
    return sorted(
        n.op.table.name for n in deepest.walk()
        if isinstance(n.op, phys.TableScan))


def test_sec25_serial_vs_parallel(benchmark, sec25_shell):
    engine = PdwEngine(sec25_shell)
    compiled = benchmark(engine.compile, SQL)
    baseline = parallelize_serial_plan(compiled.serial, sec25_shell)

    serial_first = _first_join_tables(compiled.serial.best_serial_plan)
    moves = [n.op for n in compiled.pdw_plan.root.walk()
             if isinstance(n.op, DataMovement)]
    ratio = baseline.cost / compiled.pdw_plan.cost

    lines = [
        "Section 2.5: parallelizing the best serial plan is not enough",
        "(customer 1M on custkey, orders 1.5M on orderkey, "
        "lineitem 3M on orderkey, 8 nodes)",
        "",
        fmt_row("plan", "first join", "DMS cost (s)",
                widths=[34, 24, 14]),
        fmt_row("best serial, parallelized", "x".join(serial_first),
                f"{baseline.cost:.4f}", widths=[34, 24, 14]),
        fmt_row("PDW optimizer", "orders x lineitem (collocated)",
                f"{compiled.pdw_plan.cost:.4f}", widths=[34, 24, 14]),
        "",
        f"PDW speedup over parallelized-serial: {ratio:.2f}x",
        "",
        "PDW plan:",
        compiled.pdw_plan.tree_string(),
    ]
    report("E3_sec25_serial_vs_parallel", lines)

    # The paper's shape: serial order starts with customer ⋈ orders ...
    assert serial_first == ["customer", "orders"]
    # ... while PDW moves only the O⋈L result (one shuffle on custkey).
    assert len(moves) == 1
    assert moves[0].operation is DmsOperation.SHUFFLE_MOVE
    assert moves[0].hash_columns[0].name == "o_custkey"
    assert ratio > 1.0
