"""E15 (extension; §3.3.1 assumptions) — data skew vs the uniformity
assumption.

The cost model assumes *"Uniform distribution of data across nodes"*, so
it prices a shuffle at ``Y·w/N`` bytes per node.  We shuffle a uniform
and a zipf-skewed stream onto the same hash column and compare the
predicted cost against the simulated time (which is governed by the
hottest node): the uniform case matches, the skewed case is
under-predicted by roughly the node-imbalance factor — quantifying the
assumption the paper makes explicitly.
"""

import random

import pytest
from conftest import fmt_row, report

from repro.algebra.expressions import ColumnVar
from repro.algebra.properties import hashed_on
from repro.appliance.dms_runtime import DmsRuntime, GroundTruthConstants
from repro.appliance.storage import Appliance
from repro.catalog.schema import Column, TableDef, hash_distributed
from repro.common.types import INTEGER
from repro.pdw.cost_model import DmsCostModel
from repro.pdw.dms import DataMovement, DmsOperation
from repro.pdw.dsql import DsqlStep, StepKind

NODES = 8
ROWS = 20_000


def staged(rows_of_key):
    appliance = Appliance(NODES)
    appliance.create_table(TableDef(
        "src", [Column("rid", INTEGER), Column("k", INTEGER)],
        hash_distributed("rid")))
    appliance.load_rows("src", [(i, rows_of_key(i)) for i in range(ROWS)])
    return appliance


def shuffle_step():
    movement = DataMovement(
        DmsOperation.SHUFFLE_MOVE, hashed_on(1), hashed_on(2),
        (ColumnVar(2, "k", INTEGER),))
    return DsqlStep(
        index=0, kind=StepKind.DMS,
        sql="SELECT rid, k FROM src",
        source_location=hashed_on(1),
        movement=movement,
        destination_table=TableDef(
            "TEMP_ID_1", [Column("rid", INTEGER), Column("k", INTEGER)],
            hash_distributed("k"), is_temp=True),
        hash_column="k",
    )


def run_case(rows_of_key):
    appliance = staged(rows_of_key)
    truth = GroundTruthConstants(relational_per_row=0.0)
    stats = DmsRuntime(appliance, truth).execute_movement(shuffle_step())
    received = list(stats.bulk_bytes.values())
    imbalance = max(received) / (sum(received) / len(received))
    predicted = DmsCostModel(NODES).cost(
        shuffle_step().movement, float(ROWS), 8.0)
    return predicted, stats.movement_seconds, imbalance


def test_skew_ablation(benchmark):
    rng = random.Random(7)

    uniform = run_case(lambda i: i)  # distinct keys spread evenly
    zipf_keys = [min(int(rng.paretovariate(1.1)), 50) for _ in range(ROWS)]
    skewed = run_case(lambda i: zipf_keys[i])
    hot = run_case(lambda i: 0 if i % 10 else i)  # 90% one key

    benchmark(run_case, lambda i: i)

    lines = [
        "Uniformity-assumption ablation (paper 3.3.1): shuffle of "
        f"{ROWS} rows, {NODES} nodes",
        "",
        fmt_row("distribution", "predicted (s)", "simulated (s)",
                "under-pred", "node imbalance",
                widths=[14, 14, 14, 12, 14]),
    ]
    for name, (predicted, simulated, imbalance) in (
            ("uniform", uniform), ("zipf(1.1)", skewed),
            ("90%-hot-key", hot)):
        lines.append(fmt_row(
            name, f"{predicted:.6f}", f"{simulated:.6f}",
            f"{simulated / predicted:.2f}x", f"{imbalance:.2f}x",
            widths=[14, 14, 14, 12, 14]))
    lines += [
        "",
        "Under uniform data the Y*w/N model is exact; under skew the",
        "hottest node governs runtime and the model under-predicts by",
        "about the imbalance factor - the price of the paper's",
        "simplifying assumption.",
    ]
    report("E15_skew_ablation", lines)

    predicted_u, simulated_u, imbalance_u = uniform
    assert simulated_u == pytest.approx(predicted_u, rel=0.25)
    assert imbalance_u < 1.3

    _, simulated_hot, imbalance_hot = hot
    assert imbalance_hot > 3.0
    assert simulated_hot > simulated_u * 2.0
    # Under-prediction tracks the imbalance.
    assert simulated_hot / hot[0] == pytest.approx(imbalance_hot, rel=0.5)
