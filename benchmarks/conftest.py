"""Shared benchmark fixtures and the report helper.

Every benchmark regenerates one of the paper's figures/tables (see
DESIGN.md's experiment index).  Reproduced tables are printed to stdout
and archived under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import PdwEngine
from repro.workloads.tpch_datagen import build_tpch_appliance

BENCH_SCALE = 0.003
BENCH_NODES = 8

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def tpch_bench():
    """(appliance, shell) sized for benchmark runs."""
    return build_tpch_appliance(scale=BENCH_SCALE, node_count=BENCH_NODES)


@pytest.fixture(scope="session")
def bench_engine(tpch_bench):
    return PdwEngine(tpch_bench[1])


def report(name: str, lines) -> str:
    """Print a reproduced table and archive it under results/."""
    text = "\n".join(lines)
    banner = f"===== {name} ====="
    output = f"\n{banner}\n{text}\n"
    print(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return output


def fmt_row(*cells, widths=None) -> str:
    widths = widths or [18] * len(cells)
    return "  ".join(
        f"{str(cell):<{width}}" for cell, width in zip(cells, widths))
