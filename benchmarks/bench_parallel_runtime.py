"""Parallel appliance runtime vs. the serial reference walk.

Builds TPC-H appliances at several node counts, compiles Q1/Q5/Q12 once
per appliance, then executes each plan with the serial backend
(``parallel=False``: one step at a time, one node at a time, per-row
dict routing) and with the parallel runtime (``parallel=True``: step
DAG scheduling, node thread pool, fast-path routing, shared broadcast
batches).  Reports wall-clock per query, DSQL steps per second, and the
serial/parallel speedup, and checks the two backends return identical
rows.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_runtime.py
    PYTHONPATH=src python benchmarks/bench_parallel_runtime.py --quick
    PYTHONPATH=src python benchmarks/bench_parallel_runtime.py \
        --executor vectorized

``--executor`` selects the execution backend both runners use (default
``compiled``); with ``vectorized`` the comparison measures the DAG
runtime over columnar batch execution, where each node's step does
fewer, larger Python operations and spends proportionally less time
contending for the GIL, and with ``numpy`` each node's step runs
typed-ndarray kernels whose C loops *release* the GIL — the
configuration where node threads genuinely overlap.  ``--quick``
shrinks the appliance matrix for the CI perf smoke and exits non-zero
if the backends disagree on rows or the parallel runtime is
catastrophically slower (>2x) — a scheduling regression.  The full run
archives its table under ``benchmarks/results/parallel_runtime.txt``
(per-executor suffix for non-default backends).

Interpreting the numbers: the simulated node work under the pure-Python
backends never truly overlaps on a stock (GIL) CPython build — node
threads interleave, and measured wins come from the routing fast path
and broadcast copy elimination.  The numpy backend changes that: while
one node's thread is inside a ufunc/aggregation C loop the GIL is
released, so other nodes' threads run concurrently, and parallel can
beat serial on CPU-bound scan-aggregate work even with the GIL.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, List, Tuple

from repro.appliance.runner import DsqlRunner
from repro.pdw.engine import PdwEngine
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUERIES = ("Q1", "Q5", "Q12")
NODE_COUNTS = (2, 4, 8)
QUICK_NODE_COUNTS = (4,)


def time_runner(runner: DsqlRunner, plan, repeat: int
                ) -> Tuple[float, List[Tuple]]:
    """(best wall-clock seconds, canonical rows) over ``repeat`` runs."""
    best = float("inf")
    rows: List[Tuple] = []
    for _ in range(repeat):
        started = time.perf_counter()
        result = runner.run(plan)
        best = min(best, time.perf_counter() - started)
        rows = result.sorted_rows()
    return best, rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="parallel runtime vs serial reference walk")
    parser.add_argument("--quick", action="store_true",
                        help="one small appliance; exit 1 on row "
                             "mismatch or a >2x slowdown (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale (default 0.01, quick 0.002)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed runs per query, best kept "
                             "(default 3, quick 2)")
    parser.add_argument("--executor", default="compiled",
                        choices=("reference", "compiled", "vectorized",
                                 "numpy"),
                        help="execution backend for both runners "
                             "(default compiled)")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (
        0.002 if args.quick else 0.01)
    repeat = args.repeat if args.repeat is not None else (
        2 if args.quick else 3)
    node_counts = QUICK_NODE_COUNTS if args.quick else NODE_COUNTS

    header = (f"{'nodes':>5} {'query':<6} {'steps':>5} "
              f"{'serial s':>10} {'parallel s':>11} "
              f"{'serial st/s':>12} {'parallel st/s':>14} "
              f"{'speedup':>8} {'dag width':>9}")
    lines: List[str] = [header, "-" * len(header)]
    mismatches: List[str] = []
    worst_ratio = float("inf")  # serial/parallel; >1 = parallel faster

    for nodes in node_counts:
        print(f"building TPC-H appliance "
              f"(scale={scale}, nodes={nodes}) ...")
        appliance, shell = build_tpch_appliance(scale=scale,
                                                node_count=nodes)
        engine = PdwEngine(shell)
        plans = {name: engine.compile(TPCH_QUERIES[name]).dsql_plan
                 for name in QUERIES}
        serial_runner = DsqlRunner(appliance, parallel=False,
                                   executor=args.executor)
        parallel_runner = DsqlRunner(appliance, parallel=True,
                                     executor=args.executor)
        # warm caches (parse/bind, compiled closures, thread pools)
        for plan in plans.values():
            serial_runner.run(plan)
            parallel_runner.run(plan)
        for name, plan in plans.items():
            serial_s, serial_rows = time_runner(serial_runner, plan,
                                                repeat)
            parallel_s, parallel_rows = time_runner(parallel_runner,
                                                    plan, repeat)
            if parallel_rows != serial_rows:
                mismatches.append(f"{name} at {nodes} nodes")
            from repro.appliance.scheduler import StepDag
            steps = len(plan.steps)
            speedup = serial_s / parallel_s
            worst_ratio = min(worst_ratio, speedup)
            lines.append(
                f"{nodes:>5} {name:<6} {steps:>5} "
                f"{serial_s:>10.4f} {parallel_s:>11.4f} "
                f"{steps / serial_s:>12.1f} {steps / parallel_s:>14.1f} "
                f"{speedup:>7.2f}x {StepDag(plan).max_width:>9}")

    table = "\n".join(lines)
    print()
    print(table)

    if mismatches:
        print(f"\nFAIL: backends disagree on rows: {mismatches}")
        return 1

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        suffix = ("" if args.executor == "compiled"
                  else f"_{args.executor}")
        path = RESULTS_DIR / f"parallel_runtime{suffix}.txt"
        path.write_text(table + "\n")
        print(f"\narchived to {path}")

    if args.quick and worst_ratio < 0.5:
        print(f"\nFAIL: parallel runtime is >2x slower than serial "
              f"(worst speedup {worst_ratio:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
