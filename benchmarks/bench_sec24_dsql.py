"""E2 (§2.4) — the DSQL plan example, compiled and executed.

The paper walks through a two-step plan: a DMS operation re-partitioning
Orders on o_custkey into a temp table, then a SQL operation joining it
with Customer and returning tuples.  We reproduce the step structure,
execute it on the simulated appliance, and verify the result against the
single-system-image reference.
"""

from conftest import fmt_row, report

from repro.appliance.runner import DsqlRunner, run_reference
from repro.pdw.dms import DmsOperation
from repro.pdw.dsql import StepKind
from repro.workloads.tpch_queries import SEC24_JOIN


def test_sec24_dsql_plan(benchmark, tpch_bench, bench_engine):
    appliance, _ = tpch_bench
    compiled = bench_engine.compile(SEC24_JOIN)

    result = benchmark(lambda: DsqlRunner(appliance).run(
        compiled.dsql_plan))
    reference = run_reference(appliance, SEC24_JOIN)

    def canon(rows):
        return sorted(rows)

    lines = [
        "Section 2.4 DSQL plan example",
        "",
        compiled.dsql_plan.describe(),
        "",
        fmt_row("step", "kind", "operation", "rows moved",
                "simulated time", widths=[6, 8, 22, 12, 16]),
    ]
    for step, stats in zip(compiled.dsql_plan.steps, result.step_stats):
        lines.append(fmt_row(
            step.index,
            step.kind.value,
            step.movement.describe() if step.movement else "-",
            stats.rows_moved,
            f"{stats.elapsed_seconds:.6f}s",
            widths=[6, 8, 22, 12, 16]))
    lines += [
        "",
        f"result rows: {len(result.rows)} "
        f"(reference: {len(reference.rows)}; "
        f"match: {canon(result.rows) == canon(reference.rows)})",
        f"predicted DMS cost: {compiled.pdw_plan.cost:.6f}s, "
        f"simulated DMS time: {result.dms_seconds:.6f}s",
    ]
    report("E2_sec24_dsql", lines)

    steps = compiled.dsql_plan.steps
    assert [s.kind for s in steps] == [StepKind.DMS, StepKind.RETURN]
    # The DMS step repartitions exactly one join input (at this scale the
    # cost model may pick a customer broadcast over the paper's orders
    # shuffle — both are single-move two-step plans; E1 pins the shuffle
    # choice under the paper's relative sizes).
    assert steps[0].movement.operation in (DmsOperation.SHUFFLE_MOVE,
                                           DmsOperation.BROADCAST_MOVE)
    assert canon(result.rows) == canon(reference.rows)
