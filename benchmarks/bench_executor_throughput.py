"""Executor throughput: compiled closure backend vs. reference interpreter.

Compiles the TPC-H workload once, then executes every DSQL plan with both
executor backends and reports wall-clock throughput in processed rows per
second.  "Processed rows" counts every row each plan touches — rows moved
by DMS steps plus rows gathered by the Return step — so both backends are
charged for identical work and the rows/sec ratio equals the wall-clock
speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor_throughput.py
    PYTHONPATH=src python benchmarks/bench_executor_throughput.py --quick

``--quick`` shrinks the appliance and query set for the CI perf smoke and
exits non-zero if the compiled backend is not faster than the interpreter
(a compiled-executor performance regression).  The full run archives its
table under ``benchmarks/results/executor_throughput.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, List, Tuple

from repro.appliance.runner import DsqlRunner
from repro.pdw.engine import PdwEngine
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK_QUERIES = ("Q1", "Q6", "Q12", "Q14")


def compile_workload(engine: PdwEngine, names) -> Dict[str, object]:
    return {name: engine.compile(TPCH_QUERIES[name]).dsql_plan
            for name in names}


def processed_rows(result) -> int:
    """Rows the executor touched: DMS-moved rows + returned rows."""
    return sum(stats.rows_moved for stats in result.step_stats)


def time_backend(appliance, plans: Dict[str, object], compiled: bool,
                 repeat: int) -> Dict[str, Tuple[float, int]]:
    """Per query: (best wall-clock seconds, processed rows per run)."""
    runner = DsqlRunner(appliance, compiled=compiled)
    timings: Dict[str, Tuple[float, int]] = {}
    for name, plan in plans.items():
        best = float("inf")
        rows = 0
        for _ in range(repeat):
            started = time.perf_counter()
            result = runner.run(plan)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            rows = processed_rows(result)
        timings[name] = (best, rows)
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="executor throughput: compiled vs interpreter")
    parser.add_argument("--quick", action="store_true",
                        help="small appliance + query subset; exit 1 if "
                             "the compiled backend is slower (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale (default 0.003, quick 0.002)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="compute nodes (default 8, quick 4)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed runs per query, best kept "
                             "(default 3, quick 2)")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (
        0.002 if args.quick else 0.003)
    nodes = args.nodes if args.nodes is not None else (
        4 if args.quick else 8)
    repeat = args.repeat if args.repeat is not None else (
        2 if args.quick else 3)
    names = QUICK_QUERIES if args.quick else tuple(query_names())

    print(f"building TPC-H appliance (scale={scale}, nodes={nodes}) ...")
    appliance, shell = build_tpch_appliance(scale=scale, node_count=nodes)
    engine = PdwEngine(shell)
    plans = compile_workload(engine, names)

    # Warm both backends once (populates caches, excludes first-run
    # artifacts from the timings below).
    time_backend(appliance, plans, compiled=True, repeat=1)
    time_backend(appliance, plans, compiled=False, repeat=1)

    interpreted = time_backend(appliance, plans, compiled=False,
                               repeat=repeat)
    compiled = time_backend(appliance, plans, compiled=True,
                            repeat=repeat)

    header = (f"{'query':<6} {'rows':>8} {'interp s':>10} "
              f"{'compiled s':>10} {'interp r/s':>12} "
              f"{'compiled r/s':>13} {'speedup':>8}")
    lines: List[str] = [header, "-" * len(header)]
    total_rows = 0
    total_interp = 0.0
    total_compiled = 0.0
    for name in names:
        interp_s, rows = interpreted[name]
        compiled_s, _ = compiled[name]
        total_rows += rows
        total_interp += interp_s
        total_compiled += compiled_s
        lines.append(
            f"{name:<6} {rows:>8} {interp_s:>10.4f} {compiled_s:>10.4f} "
            f"{rows / interp_s:>12.0f} {rows / compiled_s:>13.0f} "
            f"{interp_s / compiled_s:>7.2f}x")
    speedup = total_interp / total_compiled
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<6} {total_rows:>8} {total_interp:>10.4f} "
        f"{total_compiled:>10.4f} {total_rows / total_interp:>12.0f} "
        f"{total_rows / total_compiled:>13.0f} {speedup:>7.2f}x")

    table = "\n".join(lines)
    print()
    print(table)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "executor_throughput.txt"
        path.write_text(table + "\n")
        print(f"\narchived to {path}")

    if args.quick and speedup <= 1.0:
        print(f"\nFAIL: compiled backend is not faster than the "
              f"interpreter (speedup {speedup:.2f}x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
