"""Executor throughput: reference interpreter vs compiled closures vs
vectorized column kernels vs numpy array kernels.

Compiles the TPC-H workload once, then executes every DSQL plan with all
four executor backends and reports wall-clock throughput in processed
rows per second.  "Processed rows" counts every row each plan touches —
rows moved by DMS steps plus rows gathered by the Return step — so the
backends are charged for identical work and the rows/sec ratio equals
the wall-clock speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor_throughput.py
    PYTHONPATH=src python benchmarks/bench_executor_throughput.py --quick

``--quick`` shrinks the appliance and query set for the CI perf smoke
and exits non-zero if (a) the compiled backend is not faster than the
interpreter overall, (b) the vectorized backend is slower than the
compiled backend on Q1's scan-aggregate — the workload the columnar
layout exists for — or (c) the numpy backend is slower than the
vectorized backend on Q1, the workload the typed-ndarray kernels exist
for.  The full run archives its table under
``benchmarks/results/E19_numpy_throughput.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, Tuple

from repro.appliance.runner import DsqlRunner
from repro.pdw.engine import PdwEngine
from repro.workloads.tpch_datagen import build_tpch_appliance
from repro.workloads.tpch_queries import TPCH_QUERIES, query_names

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK_QUERIES = ("Q1", "Q6", "Q12", "Q14")
BACKENDS = ("reference", "compiled", "vectorized", "numpy")


def compile_workload(engine: PdwEngine, names) -> Dict[str, object]:
    return {name: engine.compile(TPCH_QUERIES[name]).dsql_plan
            for name in names}


def processed_rows(result) -> int:
    """Rows the executor touched: DMS-moved rows + returned rows."""
    return sum(stats.rows_moved for stats in result.step_stats)


def time_backend(appliance, plans: Dict[str, object], executor: str,
                 repeat: int) -> Dict[str, Tuple[float, int]]:
    """Per query: (best wall-clock seconds, processed rows per run)."""
    runner = DsqlRunner(appliance, executor=executor)
    timings: Dict[str, Tuple[float, int]] = {}
    for name, plan in plans.items():
        best = float("inf")
        rows = 0
        for _ in range(repeat):
            started = time.perf_counter()
            result = runner.run(plan)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            rows = processed_rows(result)
        timings[name] = (best, rows)
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="executor throughput: reference vs compiled vs "
                    "vectorized vs numpy")
    parser.add_argument("--quick", action="store_true",
                        help="small appliance + query subset; exit 1 on "
                             "a backend performance regression (CI smoke)")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale (default 0.003, quick 0.002)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="compute nodes (default 8, quick 4)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed runs per query, best kept "
                             "(default 3, quick 2)")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (
        0.002 if args.quick else 0.003)
    nodes = args.nodes if args.nodes is not None else (
        4 if args.quick else 8)
    repeat = args.repeat if args.repeat is not None else (
        2 if args.quick else 3)
    names = QUICK_QUERIES if args.quick else tuple(query_names())

    print(f"building TPC-H appliance (scale={scale}, nodes={nodes}) ...")
    appliance, shell = build_tpch_appliance(scale=scale, node_count=nodes)
    engine = PdwEngine(shell)
    plans = compile_workload(engine, names)

    # Warm every backend once (populates bind/kernel caches and the
    # numpy scan cache, excludes first-run artifacts from the timings
    # below).
    for executor in BACKENDS:
        time_backend(appliance, plans, executor, repeat=1)

    timings = {executor: time_backend(appliance, plans, executor, repeat)
               for executor in BACKENDS}

    header = (f"{'query':<6} {'rows':>8} {'interp s':>10} "
              f"{'compiled s':>10} {'vector s':>10} {'numpy s':>10} "
              f"{'numpy r/s':>12} {'comp/int':>8} {'vec/comp':>8} "
              f"{'np/vec':>8} {'np/comp':>8}")
    lines = [header, "-" * len(header)]
    totals = {executor: 0.0 for executor in BACKENDS}
    total_rows = 0
    for name in names:
        interp_s, rows = timings["reference"][name]
        compiled_s, _ = timings["compiled"][name]
        vector_s, _ = timings["vectorized"][name]
        numpy_s, _ = timings["numpy"][name]
        total_rows += rows
        totals["reference"] += interp_s
        totals["compiled"] += compiled_s
        totals["vectorized"] += vector_s
        totals["numpy"] += numpy_s
        lines.append(
            f"{name:<6} {rows:>8} {interp_s:>10.4f} {compiled_s:>10.4f} "
            f"{vector_s:>10.4f} {numpy_s:>10.4f} "
            f"{rows / numpy_s:>12.0f} "
            f"{interp_s / compiled_s:>7.2f}x "
            f"{compiled_s / vector_s:>7.2f}x "
            f"{vector_s / numpy_s:>7.2f}x "
            f"{compiled_s / numpy_s:>7.2f}x")
    compiled_speedup = totals["reference"] / totals["compiled"]
    vector_speedup = totals["compiled"] / totals["vectorized"]
    numpy_speedup = totals["vectorized"] / totals["numpy"]
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<6} {total_rows:>8} {totals['reference']:>10.4f} "
        f"{totals['compiled']:>10.4f} {totals['vectorized']:>10.4f} "
        f"{totals['numpy']:>10.4f} "
        f"{total_rows / totals['numpy']:>12.0f} "
        f"{compiled_speedup:>7.2f}x {vector_speedup:>7.2f}x "
        f"{numpy_speedup:>7.2f}x "
        f"{totals['compiled'] / totals['numpy']:>7.2f}x")

    table = "\n".join(lines)
    print()
    print(table)

    if not args.quick:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "E19_numpy_throughput.txt"
        path.write_text(table + "\n")
        print(f"\narchived to {path}")

    if args.quick:
        failures = []
        if compiled_speedup <= 1.0:
            failures.append(
                f"compiled backend is not faster than the interpreter "
                f"(speedup {compiled_speedup:.2f}x)")
        q1_compiled, _ = timings["compiled"]["Q1"]
        q1_vector, _ = timings["vectorized"]["Q1"]
        q1_numpy, _ = timings["numpy"]["Q1"]
        if q1_vector > q1_compiled:
            failures.append(
                f"vectorized backend is slower than compiled on Q1 "
                f"({q1_vector:.4f}s vs {q1_compiled:.4f}s, "
                f"{q1_compiled / q1_vector:.2f}x)")
        if q1_numpy > q1_vector:
            failures.append(
                f"numpy backend is slower than vectorized on Q1 "
                f"({q1_numpy:.4f}s vs {q1_vector:.4f}s, "
                f"{q1_vector / q1_numpy:.2f}x)")
        if failures:
            for failure in failures:
                print(f"\nFAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
